"""Per-launch task DAG construction.

The paper's Figure 4 host code is barrier-structured: synchronize *all*
read buffers, barrier, launch every partition, update every tracker. But
the information the generated enumerators produce is strictly finer than a
barrier needs — each kernel partition depends only on the transfers that
feed *its own* read set. This module turns one kernel launch into an
explicit task DAG:

* one :class:`TransferTask` per stale tracker segment of one partition's
  read set (source = owning device, destination = the partition's device),
* one :class:`KernelTask` per non-empty grid partition, with edges to
  exactly the transfer tasks feeding its reads,
* one :class:`WriteUpdate` per (partition, written array) — host-side
  tracker bookkeeping, ordered exactly as Figure 4's third loop so the
  final tracker state is bit-identical to the sequential orchestration.

Building the plan performs the same enumerator scans and tracker queries
the sequential loops would, in the same order — the host-side *cost* of
each step is recorded on the task and charged by the executor at issue
time, so the ``sequential`` policy reproduces the legacy host-time
evolution exactly while ``overlap`` merely re-orders device work.

Construction is staged: everything that depends only on the *launch
fingerprint* (partition intervals, enumerated read/write byte ranges,
merged event runs, DAG shape) lives in a :class:`PlanSkeleton` built by
:func:`build_plan_skeleton` and cacheable across launches, while the
tracker-dependent residual — which stale segments actually need copying —
is applied per launch by :func:`instantiate_plan`. The unstaged
:func:`build_launch_plan` composes the two and remains the single-call
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.enumerators import Enumerator
from repro.compiler.pipeline import CompiledKernel
from repro.compiler.strategy import Partition
from repro.cuda.api import resolve_array_shapes, split_launch_args
from repro.cuda.dim3 import Dim3
from repro.poly.intervals import subtract_intervals
from repro.runtime.sync import byte_ranges, plan_stale_copies_tiered, trim_copies
from repro.runtime.vbuffer import VirtualBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi

__all__ = [
    "merge_event_ranges",
    "TransferTask",
    "ReadSync",
    "KernelTask",
    "WriteUpdate",
    "LaunchPlan",
    "CrossLaunchEdge",
    "PipelinedPlan",
    "ReadScan",
    "WriteScan",
    "SkeletonPartition",
    "PlanSkeleton",
    "ResidualRecord",
    "REPLAY_PLAN_BINDINGS",
    "launch_partitions",
    "build_plan_skeleton",
    "instantiate_plan",
    "instantiate_plan_replay",
    "replay_query_counts",
    "build_launch_plan",
]


def launch_partitions(api: "MultiGpuApi", ck: CompiledKernel, grid: Dim3) -> List[Partition]:
    """The grid partitions one launch uses, in global-device order.

    Cluster-attached runtimes split hierarchically — node intervals first,
    then per-GPU ranges within each node (``repro.cluster.partition``) — so
    only partition seams at node boundaries exchange halos across the
    network. Single-node runtimes use the flat balanced split; a 1-node
    cluster produces the identical partition list by construction.
    """
    cluster = getattr(api, "cluster", None)
    if cluster is not None:
        from repro.cluster.partition import hierarchical_partitions

        parts = hierarchical_partitions(ck.strategy, grid, cluster)
    else:
        parts = ck.strategy.partitions(grid, api.config.n_gpus)
    # Placement hint (task-graph frontend): rotate the partition->device
    # mapping so partition 0 lands on the hinted device. A tile-sized
    # launch (one partition) then runs *on* its task's device instead of
    # always device 0 — the trackers make data follow the writes, so tile
    # ownership distributes across the machine. Pure relabeling of which
    # device runs which partition: functional results and tracker state
    # are device-id-keyed and identical under every rotation-consistent
    # mode (the hint is task metadata, applied in every execution mode).
    offset = getattr(api, "_placement_offset", None)
    if offset:
        k = offset % len(parts)
        parts = parts[-k:] + parts[:-k]
    return parts


def merge_event_ranges(
    ranges: List[Tuple[int, int]], cap: int = 64
) -> List[Tuple[int, int]]:
    """Sorted byte ranges compressed into contiguous runs for dataflow events.

    The :class:`~repro.sched.executor.DataflowLog` keys events by byte
    interval; a stencil's thousands of per-row ranges would make every
    event query linear in that count. Adjacent/overlapping ranges merge
    into runs, and more than ``cap`` runs collapse to their envelope — a
    conservative (sound) over-approximation of the accessed bytes.
    """
    runs: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if lo >= hi:
            continue
        if runs and lo <= runs[-1][1]:
            if hi > runs[-1][1]:
                runs[-1] = (runs[-1][0], hi)
        else:
            runs.append((lo, hi))
    if len(runs) > cap:
        runs = [(runs[0][0], runs[-1][1])]
    return runs


@dataclass
class TransferTask:
    """One coalesced stale-segment copy feeding one partition's reads."""

    node: int
    gpu: int  # destination device
    owner: int  # source device (the nearest valid copy per the tracker)
    vb: VirtualBuffer
    array: str
    start: int  # byte offsets into the virtual buffer
    end: int

    @property
    def nbytes(self) -> int:
        return self.end - self.start


@dataclass
class ReadSync:
    """One read-enumerator evaluation for one partition (Fig. 4 lines 3-7)."""

    gpu: int
    array: str
    vb: VirtualBuffer
    enum: Enumerator
    ranges: List[Tuple[int, int]]  # byte ranges of the partition's read set
    emitted: int  # raw enumerator callback count (host-cost driver)
    n_segments: int  # tracker segments returned by the query
    #: Bytes a sole-owner tracker would have re-transferred but the sharer
    #: set proved already valid on the destination (§8.3 redundancy).
    avoided: int = 0
    #: The share of ``avoided`` whose re-transfer would have crossed the
    #: cluster's node fabric (sole-owner source on another node).
    avoided_inter: int = 0
    #: Bounding-range slack bytes trimmed off the planned copies by the
    #: irredundant-transfer path (provably never read by the partition).
    overapprox: int = 0
    overapprox_inter: int = 0
    transfers: List[TransferTask] = field(default_factory=list)


@dataclass
class KernelTask:
    """One partition of the kernel on one device."""

    node: int
    gpu_idx: int
    gpu: int
    part: Partition
    transfer_deps: List[int] = field(default_factory=list)  # TransferTask nodes
    #: (buffer, contiguous byte runs) accessed by this partition — the
    #: interval-keyed dataflow events the executor records and waits on.
    reads: List[Tuple[VirtualBuffer, List[Tuple[int, int]]]] = field(default_factory=list)
    writes: List[Tuple[VirtualBuffer, List[Tuple[int, int]]]] = field(default_factory=list)


@dataclass
class WriteUpdate:
    """Tracker bookkeeping for one partition's writes (Fig. 4 lines 22-25)."""

    gpu: int
    array: str
    vb: VirtualBuffer
    enum: Enumerator
    ranges: List[Tuple[int, int]]
    emitted: int


@dataclass
class LaunchPlan:
    """The task DAG of one kernel launch."""

    ck: CompiledKernel
    grid: Dim3
    block: Dim3
    by_name: Mapping[str, object]
    scalars: Mapping[str, int]
    shapes: Mapping[str, Sequence[int]]
    parts: List[Partition]
    #: Per non-empty partition (in device order): its read-enumerator syncs.
    reads: List[List[ReadSync]] = field(default_factory=list)
    kernels: List[KernelTask] = field(default_factory=list)
    #: Per non-empty partition (in device order): its tracker updates.
    updates: List[List[WriteUpdate]] = field(default_factory=list)
    #: Launch fingerprint (repro.runtime.fingerprint) of the skeleton this
    #: plan was instantiated from; keys the time-estimate memo.
    fingerprint: Optional[tuple] = None

    @property
    def transfers(self) -> List[TransferTask]:
        return [t for syncs in self.reads for rs in syncs for t in rs.transfers]

    def edges(self) -> List[Tuple[int, int]]:
        """(transfer node -> kernel node) dependency edges."""
        return [(dep, k.node) for k in self.kernels for dep in k.transfer_deps]

    def validate(self) -> None:
        """Structural invariants (tests): edges are intra-device and acyclic.

        Transfer nodes are numbered before the kernel node of the same
        partition, so every edge goes from a lower to a higher node id —
        the DAG is acyclic by construction; this re-checks it, plus that a
        kernel only ever waits for transfers into *its own* device.
        """
        transfers = {t.node: t for t in self.transfers}
        for k in self.kernels:
            for dep in k.transfer_deps:
                t = transfers[dep]
                if t.gpu != k.gpu:
                    raise AssertionError(
                        f"kernel on gpu {k.gpu} depends on transfer into gpu {t.gpu}"
                    )
                if dep >= k.node:
                    raise AssertionError(f"edge {dep} -> {k.node} is not topological")


@dataclass(frozen=True)
class CrossLaunchEdge:
    """One interval-precise dependency between tasks of different launches.

    ``(src_launch, src_node) -> (dst_launch, dst_node)`` with the byte
    interval of the conflict on one device instance. ``kind`` is the
    hazard class: ``raw`` (the destination reads bytes the source wrote),
    ``war`` (the destination overwrites bytes the source read) or ``waw``
    (both write). Node ids are per-launch :class:`LaunchPlan` node numbers.
    """

    src_launch: int
    src_node: int
    dst_launch: int
    dst_node: int
    vb_id: int
    dev: int
    lo: int
    hi: int
    kind: str


def _subtract(ranges: List[Tuple[int, int]], lo: int, hi: int) -> List[Tuple[int, int]]:
    """Remove ``[lo, hi)`` from a list of disjoint byte ranges."""
    return subtract_intervals(ranges, [(lo, hi)])


@dataclass
class PipelinedPlan:
    """A window of consecutive launch plans fused into one rolling DAG.

    Concatenates per-launch :class:`LaunchPlan`\\ s in program order and
    derives *interval-precise* cross-launch edges: a task of launch ``k``
    depends on a task of an earlier launch only where their byte intervals
    on the same device instance actually conflict — a transfer out of an
    instance on the bytes a previous kernel wrote there (RAW), a transfer
    or kernel overwriting bytes a previous task read or wrote (WAR/WAW).
    On a 1-halo stencil this is what lets interior partitions of launch
    ``k+1`` start with no cross-launch *remote* dependency at all: only the
    seam partitions' halo bytes overlap another device's writes.

    The executor realizes exactly these edges dynamically through the
    :class:`~repro.sched.executor.DataflowLog` at issue time;
    :meth:`cross_launch_edges` is the static, auditable view the tests and
    reports check against.
    """

    plans: List[LaunchPlan] = field(default_factory=list)
    #: Global launch index (the runtime's launch counter) per plan.
    launch_indices: List[int] = field(default_factory=list)
    #: Dependence wave per plan (task-graph launches only; None otherwise).
    waves: List[Optional[int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.plans)

    def append(
        self, plan: LaunchPlan, launch_index: int, wave: Optional[int] = None
    ) -> None:
        """Add the next launch of the window, in program order."""
        if self.launch_indices and launch_index <= self.launch_indices[-1]:
            raise AssertionError(
                f"launch {launch_index} submitted after {self.launch_indices[-1]}"
            )
        self.plans.append(plan)
        self.launch_indices.append(launch_index)
        self.waves.append(wave)

    def clear(self) -> None:
        """Reset after a flush."""
        self.plans.clear()
        self.launch_indices.clear()
        self.waves.clear()

    @staticmethod
    def _accesses(plan: LaunchPlan):
        """(node, vb_id, dev, lo, hi, is_write) for every task of one plan.

        Transfers read their source instance and write their destination
        instance; kernels read/write their own device's instances per the
        merged enumerator runs the dataflow events use.
        """
        out = []
        for t in plan.transfers:
            out.append((t.node, t.vb.vb_id, t.owner, t.start, t.end, False))
            out.append((t.node, t.vb.vb_id, t.gpu, t.start, t.end, True))
        for k in plan.kernels:
            for vb, runs in k.reads:
                for lo, hi in runs:
                    out.append((k.node, vb.vb_id, k.gpu, lo, hi, False))
            for vb, runs in k.writes:
                for lo, hi in runs:
                    out.append((k.node, vb.vb_id, k.gpu, lo, hi, True))
        return out

    def cross_launch_edges(self) -> List[CrossLaunchEdge]:
        """All interval-precise dependencies between different launches.

        For each access of launch ``k`` the earlier launches are scanned
        newest-first per byte: a conflicting *write* found in launch ``j``
        both yields an edge and satisfies those bytes (anything older is
        reached transitively through that write), while conflicting *reads*
        yield WAR edges without terminating the scan — every reader since
        the last write constrains an overwrite.
        """
        edges: List[CrossLaunchEdge] = []
        per_plan = [self._accesses(p) for p in self.plans]
        for k in range(1, len(self.plans)):
            for node, vb_id, dev, lo, hi, is_write in per_plan[k]:
                remaining = [(lo, hi)]
                for j in range(k - 1, -1, -1):
                    if not remaining:
                        break
                    # Scan launch j atomically: its reads and writes both
                    # see the bytes still unsatisfied when the scan reaches
                    # launch j; write coverage is subtracted only afterwards
                    # so a launch's own readers are never shadowed by its
                    # writers.
                    covered: List[Tuple[int, int]] = []
                    for pnode, pvb, pdev, plo, phi, pwrite in per_plan[j]:
                        if pvb != vb_id or pdev != dev:
                            continue
                        for rlo, rhi in remaining:
                            olo, ohi = max(rlo, plo), min(rhi, phi)
                            if olo >= ohi:
                                continue
                            if pwrite:
                                kind = "waw" if is_write else "raw"
                            elif is_write:
                                kind = "war"
                            else:
                                continue  # read-after-read: no hazard
                            edges.append(
                                CrossLaunchEdge(
                                    self.launch_indices[j],
                                    pnode,
                                    self.launch_indices[k],
                                    node,
                                    vb_id,
                                    dev,
                                    olo,
                                    ohi,
                                    kind,
                                )
                            )
                        if pwrite:
                            covered.append((plo, phi))
                    for plo, phi in covered:
                        remaining = _subtract(remaining, plo, phi)
        return edges

    def validate(self) -> None:
        """Structural invariants: per-plan DAGs plus backward-only fusion.

        Each member plan re-validates, launch indices strictly increase,
        and every cross-launch edge points from an earlier launch to a
        later one over a non-empty byte interval.
        """
        for plan in self.plans:
            plan.validate()
        for a, b in zip(self.launch_indices, self.launch_indices[1:]):
            if b <= a:
                raise AssertionError(f"launch order violated: {a} before {b}")
        for e in self.cross_launch_edges():
            if e.src_launch >= e.dst_launch:
                raise AssertionError(
                    f"cross-launch edge {e.src_launch} -> {e.dst_launch} not forward"
                )
            if e.lo >= e.hi:
                raise AssertionError(f"empty conflict interval on edge {e}")


#: Placeholder for a ReadScan whose exact-read ranges were never needed;
#: distinct from None, which is a *computed* "no trimming possible" answer.
_KEEP_UNKNOWN = object()


@dataclass
class ReadScan:
    """Tracker-independent scan of one read enumerator for one partition."""

    enum: Enumerator
    array: str
    elem_size: int
    #: Byte ranges of the partition's read set. Shared by every plan
    #: instantiated from the skeleton; treated as immutable downstream.
    ranges: List[Tuple[int, int]]
    emitted: int
    #: ``merge_event_ranges(ranges)`` — the dataflow-event runs.
    event_runs: List[Tuple[int, int]]
    #: Exact read byte ranges for irredundant-transfer trimming, resolved
    #: lazily by the first residual pass that plans a copy (the answer
    #: depends only on fingerprint inputs, so it is cached here).
    keep: object = _KEEP_UNKNOWN


@dataclass
class WriteScan:
    """Tracker-independent scan of one write enumerator for one partition.

    ``ranges is None`` encodes the γ configuration (tracking disabled): no
    enumerators ran and the write conservatively covers the whole buffer.
    """

    enum: Enumerator
    array: str
    ranges: Optional[List[Tuple[int, int]]]
    emitted: int
    event_runs: Optional[List[Tuple[int, int]]]


@dataclass
class SkeletonPartition:
    """One non-empty grid partition's scans within a plan skeleton."""

    gpu_idx: int
    gpu: int
    part: Partition
    reads: List[ReadScan]
    writes: List[WriteScan]


@dataclass
class PlanSkeleton:
    """The tracker-independent half of a launch plan, cacheable per fingerprint.

    Everything here is a pure function of the launch fingerprint: the
    partition list, each partition's enumerated read/write byte ranges and
    merged event runs, and the implicit DAG shape (scan order fixes node
    numbering). What it deliberately does *not* contain: buffer bindings,
    tracker query results, stale-segment copies — the per-launch residual
    :func:`instantiate_plan` derives against live tracker state.
    """

    fingerprint: Optional[tuple]
    ck: CompiledKernel
    grid: Dim3
    block: Dim3
    scalars: Mapping[str, int]
    shapes: Mapping[str, Sequence[int]]
    parts: List[Partition]
    #: True when runtime coverage validation rejected this launch shape:
    #: the launch (and every future launch with this fingerprint) must take
    #: the single-GPU fallback instead of a plan.
    fallback: bool = False
    partitions: List[SkeletonPartition] = field(default_factory=list)
    #: Lazily-computed per-array read-footprint envelopes (see
    #: :attr:`read_footprints`); fingerprint-determined, so caching on the
    #: skeleton is sound.
    _read_footprints: Optional[tuple] = field(default=None, repr=False)

    @property
    def read_footprints(self) -> Tuple[Tuple[str, Tuple[Tuple[int, int], ...]], ...]:
        """Per-array union envelope of every partition's read event runs.

        ``((array, ((lo, hi), ...)), ...)`` sorted by array name, each runs
        tuple merged to at most the dataflow-event cap. Every byte any
        read scan of this skeleton can query lies inside its array's
        envelope, so equal tracker digests over these envelopes imply equal
        ``query_many`` results for every scan — the domain the residual
        replay cache digests. A pure function of the fingerprint (scan
        ranges are), computed once per skeleton and ~64 runs per array, so
        the per-launch digest stays O(segments-in-footprint).
        """
        if self._read_footprints is None:
            by_array: Dict[str, List[Tuple[int, int]]] = {}
            for sp in self.partitions:
                for scan in sp.reads:
                    by_array.setdefault(scan.array, []).extend(scan.event_runs)
            self._read_footprints = tuple(
                (array, tuple(merge_event_ranges(sorted(runs))))
                for array, runs in sorted(by_array.items())
            )
        return self._read_footprints


#: Max distinct buffer bindings whose fully-built plans one ResidualRecord
#: memoizes (a ping-pong loop needs two; the bound only guards pathological
#: binding churn). On overflow the binding memo is simply cleared.
REPLAY_PLAN_BINDINGS = 8


@dataclass(frozen=True)
class ResidualRecord:
    """The memoized tracker-dependent half of one launch's plan.

    One entry per read scan, in skeleton partition/scan order:
    ``(copies, n_segments, avoided, avoided_inter, overapprox,
    overapprox_inter)`` where ``copies`` is the final (source-picked,
    trimmed) stale-copy list as ``(start, end, src)`` byte tuples.
    Deliberately *buffer-free* — no VirtualBuffer references — so a
    ping-pong loop's alternating buffer bindings replay the same record;
    :func:`instantiate_plan_replay` rebinds live buffers through the
    launch's ``by_name`` mapping.

    ``plans`` additionally memoizes the fully-built :class:`LaunchPlan` per
    concrete buffer binding (tuple of array vb_ids): the executor treats
    plans as read-only, so a recurring (fingerprint, digest, binding)
    triple resubmits the identical plan object with zero construction work.
    Buffer ids are monotone, so a freed buffer's binding never recurs.
    """

    scans: Tuple[Tuple[Tuple[Tuple[int, int, int], ...], int, int, int, int, int], ...]
    plans: Dict[Tuple[int, ...], LaunchPlan] = field(
        default_factory=dict, repr=False, compare=False
    )


def build_plan_skeleton(
    api: "MultiGpuApi",
    ck: CompiledKernel,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    *,
    fingerprint: Optional[tuple] = None,
    validate: bool = False,
    stats=None,
) -> PlanSkeleton:
    """Build the fingerprint-determined half of one launch's plan.

    Runs the enumerator scans (vectorized where possible) but touches no
    tracker. With ``validate=True`` the staged launch path's checks run
    here too: unit-axis extents raise :class:`PartitioningError` *before*
    anything is cached, and a failed runtime-coverage validation returns a
    skeleton with ``fallback=True`` — both are fingerprint-determined, so
    caching their outcome is sound. ``stats`` (the launch path passes the
    api's ``RunStats``) attributes each scan to its enumerator backend;
    the default None keeps direct plan construction stats-pure.
    """
    kernel = ck.kernel
    shapes = resolve_array_shapes(kernel, scalars)
    if validate and api.config.validate_unit_axes:
        for axis in ck.model.unit_axes:
            if grid.axis(axis) * block.axis(axis) != 1:
                from repro.errors import PartitioningError

                raise PartitioningError(
                    f"kernel {kernel.name!r}: injectivity proof requires grid axis "
                    f"{axis!r} to have unit extent, launch uses "
                    f"{grid.axis(axis)}x{block.axis(axis)}"
                )
    parts = launch_partitions(api, ck, grid)
    skel = PlanSkeleton(fingerprint, ck, grid, block, scalars, shapes, parts)
    if validate and ck.model.runtime_coverage:
        from repro.compiler.coverage import coverage_validates

        for access in ck.info.writes.values():
            if access.exact:
                continue
            spec = access.coverage
            ok = spec is not None and all(
                coverage_validates(spec, part, block, grid)
                for part in parts
                if not part.is_empty
            )
            if not ok:
                skel.fallback = True
                return skel

    read_enums = api.app.enumerators.for_kernel(kernel.name, "read")
    write_enums = api.app.enumerators.for_kernel(kernel.name, "write")
    tracking = api.config.tracking_enabled
    for gpu_idx, part in enumerate(parts):
        if part.is_empty:
            continue
        gpu = api.devices[gpu_idx].device_id
        reads: List[ReadScan] = []
        writes: List[WriteScan] = []
        if tracking:
            for enum in read_enums:
                elem_size = kernel.param(enum.array).dtype.size
                ranges, emitted = byte_ranges(
                    enum, part, block, grid, scalars, shapes[enum.array],
                    elem_size, stats=stats,
                )
                reads.append(
                    ReadScan(
                        enum, enum.array, elem_size, ranges, emitted,
                        merge_event_ranges(ranges),
                    )
                )
            for enum in write_enums:
                elem_size = kernel.param(enum.array).dtype.size
                ranges, emitted = byte_ranges(
                    enum, part, block, grid, scalars, shapes[enum.array],
                    elem_size, stats=stats,
                )
                writes.append(
                    WriteScan(enum, enum.array, ranges, emitted, merge_event_ranges(ranges))
                )
        else:
            # γ configuration: no enumerators run; order conservatively on
            # the whole buffer of every written array.
            for enum in write_enums:
                writes.append(WriteScan(enum, enum.array, None, 0, None))
        skel.partitions.append(SkeletonPartition(gpu_idx, gpu, part, reads, writes))
    return skel


def instantiate_plan(
    api: "MultiGpuApi", skel: PlanSkeleton, by_name: Mapping[str, object],
    *, capture: bool = False,
):
    """The tracker-dependent residual: a concrete plan from one skeleton.

    Pure bookkeeping: no data moves, no simulated time is charged, and the
    trackers are only *queried* (all queries happen before any of this
    launch's updates, exactly like Figure 4's loop structure). Host costs
    are charged later by the executor, per policy, using the emit/segment
    counts recorded on the skeleton. Node numbering — transfers of each
    partition, then its kernel — is identical to the unstaged builder by
    construction, whichever launch built the skeleton.

    With ``capture=True`` returns ``(plan, record)`` where ``record`` is the
    :class:`ResidualRecord` the replay cache memoizes; the default returns
    just the plan.
    """
    assert not skel.fallback, "fallback skeletons never instantiate plans"
    plan = LaunchPlan(
        skel.ck, skel.grid, skel.block, by_name, skel.scalars, skel.shapes,
        skel.parts, fingerprint=skel.fingerprint,
    )
    cluster = getattr(api, "cluster", None)
    irredundant = api.config.irredundant_transfers
    next_node = 0
    captured: List[tuple] = []

    for sp in skel.partitions:
        syncs: List[ReadSync] = []
        transfer_nodes: List[int] = []
        reads_vbs: List[Tuple[VirtualBuffer, List[Tuple[int, int]]]] = []
        for scan in sp.reads:
            vb = by_name[scan.array]
            segments = vb.tracker.query_many(scan.ranges)
            copies, avoided, avoided_inter = plan_stale_copies_tiered(
                segments, sp.gpu, cluster
            )
            overapprox = overapprox_inter = 0
            if irredundant and copies:
                keep = scan.keep
                if keep is _KEEP_UNKNOWN:
                    from repro.analysis.dataflow import runtime_exact_read_ranges

                    keep = runtime_exact_read_ranges(
                        api, skel.ck.info, scan.enum, sp.part, skel.grid,
                        skel.block, skel.scalars, skel.shapes[scan.array],
                        scan.elem_size,
                    )
                    scan.keep = keep
                if keep is not None:
                    copies, overapprox, overapprox_inter = trim_copies(
                        copies, keep, sp.gpu, cluster
                    )
            rs = ReadSync(
                sp.gpu, scan.array, vb, scan.enum, scan.ranges, scan.emitted,
                len(segments), avoided, avoided_inter, overapprox, overapprox_inter,
            )
            for seg in copies:
                task = TransferTask(
                    next_node, sp.gpu, seg.owner, vb, scan.array, seg.start, seg.end
                )
                next_node += 1
                rs.transfers.append(task)
                transfer_nodes.append(task.node)
            if capture:
                captured.append(
                    (
                        tuple((seg.start, seg.end, seg.owner) for seg in copies),
                        len(segments), avoided, avoided_inter,
                        overapprox, overapprox_inter,
                    )
                )
            syncs.append(rs)
            reads_vbs.append((vb, scan.event_runs))
        plan.reads.append(syncs)

        ktask = KernelTask(next_node, sp.gpu_idx, sp.gpu, sp.part)
        next_node += 1
        ktask.transfer_deps = transfer_nodes
        ktask.reads = reads_vbs
        plan.kernels.append(ktask)

        ups: List[WriteUpdate] = []
        for scan in sp.writes:
            vb = by_name[scan.array]
            if scan.ranges is None:
                ktask.writes.append((vb, [(0, vb.nbytes)]))
            else:
                ups.append(
                    WriteUpdate(
                        sp.gpu, scan.array, vb, scan.enum, scan.ranges, scan.emitted
                    )
                )
                ktask.writes.append((vb, scan.event_runs))
        plan.updates.append(ups)

    if capture:
        return plan, ResidualRecord(tuple(captured))
    return plan


def instantiate_plan_replay(
    api: "MultiGpuApi",
    skel: PlanSkeleton,
    by_name: Mapping[str, object],
    record: ResidualRecord,
) -> LaunchPlan:
    """Rebuild a concrete plan from a memoized residual — no tracker queries.

    The replay-cache hit path: structurally identical to
    :func:`instantiate_plan`, but every tracker-derived quantity — the
    stale-copy list, segment counts, avoided/overapprox counters — comes
    from ``record`` instead of ``query_many`` + ``plan_stale_copies_tiered``
    (+ ``trim_copies``). Sound because the cache key's footprint digest was
    recomputed against the live trackers this launch: equal digests mean the
    queries *would have* returned the same segments. Buffer identities are
    rebound through ``by_name``, so a ping-pong loop's alternating bindings
    replay one record. The per-range ``op_counts`` charge of ``query_many``
    is mirrored so tracker accounting stays bit-identical with replay on or
    off.
    """
    assert not skel.fallback, "fallback skeletons never instantiate plans"
    replay_query_counts(skel, by_name)
    plan = LaunchPlan(
        skel.ck, skel.grid, skel.block, by_name, skel.scalars, skel.shapes,
        skel.parts, fingerprint=skel.fingerprint,
    )
    next_node = 0
    entries = iter(record.scans)

    for sp in skel.partitions:
        syncs: List[ReadSync] = []
        transfer_nodes: List[int] = []
        reads_vbs: List[Tuple[VirtualBuffer, List[Tuple[int, int]]]] = []
        for scan in sp.reads:
            vb = by_name[scan.array]
            copies, n_segments, avoided, avoided_inter, overapprox, overapprox_inter = (
                next(entries)
            )
            rs = ReadSync(
                sp.gpu, scan.array, vb, scan.enum, scan.ranges, scan.emitted,
                n_segments, avoided, avoided_inter, overapprox, overapprox_inter,
            )
            for start, end, src in copies:
                task = TransferTask(
                    next_node, sp.gpu, src, vb, scan.array, start, end
                )
                next_node += 1
                rs.transfers.append(task)
                transfer_nodes.append(task.node)
            syncs.append(rs)
            reads_vbs.append((vb, scan.event_runs))
        plan.reads.append(syncs)

        ktask = KernelTask(next_node, sp.gpu_idx, sp.gpu, sp.part)
        next_node += 1
        ktask.transfer_deps = transfer_nodes
        ktask.reads = reads_vbs
        plan.kernels.append(ktask)

        ups: List[WriteUpdate] = []
        for scan in sp.writes:
            vb = by_name[scan.array]
            if scan.ranges is None:
                ktask.writes.append((vb, [(0, vb.nbytes)]))
            else:
                ups.append(
                    WriteUpdate(
                        sp.gpu, scan.array, vb, scan.enum, scan.ranges, scan.emitted
                    )
                )
                ktask.writes.append((vb, scan.event_runs))
        plan.updates.append(ups)

    return plan


def replay_query_counts(skel: PlanSkeleton, by_name: Mapping[str, object]) -> None:
    """Mirror ``query_many``'s per-range op charge for a replayed launch.

    A replay serves every tracker answer from the memoized record, but the
    logical dependency-resolution queries still happened from the host
    program's point of view — the cost model and `op_counts` accounting
    must be bit-identical with the replay cache on or off. ``query_many``
    early-returns before counting on empty range lists, hence the guard.
    """
    for sp in skel.partitions:
        for scan in sp.reads:
            if scan.ranges:
                by_name[scan.array].tracker.op_counts["query"] += len(scan.ranges)


def build_launch_plan(
    api: "MultiGpuApi", ck: CompiledKernel, grid: Dim3, block: Dim3, args: Sequence[object]
) -> LaunchPlan:
    """Build the per-launch DAG from the enumerators and tracker queries.

    Composes :func:`build_plan_skeleton` and :func:`instantiate_plan`
    without consulting any cache — the uncached path the staged launcher
    (and every property test) measures the cached path against.
    """
    from repro.runtime.fingerprint import launch_fingerprint

    by_name, scalars = split_launch_args(ck.kernel, args)
    skel = build_plan_skeleton(api, ck, grid, block, scalars)
    skel.fingerprint = launch_fingerprint(api, ck, grid, block, scalars, skel.shapes)
    return instantiate_plan(api, skel, by_name)
