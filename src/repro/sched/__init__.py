"""Async launch scheduler: per-launch task DAGs with policy-driven issue.

Replaces the three sequential loops of the Figure 4 kernel-launch
replacement with an explicit dependency graph — one node per segment
transfer, kernel partition, and tracker update — issued under one of three
policies (``sequential`` | ``overlap`` | ``overlap+p2p``). See
``docs/scheduler.md`` for construction rules and the policy matrix.
"""

from repro.sched.executor import DataflowLog, execute_plan
from repro.sched.graph import (
    KernelTask,
    LaunchPlan,
    PlanSkeleton,
    ReadSync,
    TransferTask,
    WriteUpdate,
    build_launch_plan,
    build_plan_skeleton,
    instantiate_plan,
)
from repro.sched.policy import SCHEDULES, SchedulePolicy, select_policy

__all__ = [
    "DataflowLog",
    "execute_plan",
    "KernelTask",
    "LaunchPlan",
    "PlanSkeleton",
    "ReadSync",
    "TransferTask",
    "WriteUpdate",
    "build_launch_plan",
    "build_plan_skeleton",
    "instantiate_plan",
    "SCHEDULES",
    "SchedulePolicy",
    "select_policy",
]
