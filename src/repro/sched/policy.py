"""Scheduling policies for the kernel-launch replacement.

Three policies share one launch plan (the task DAG) and differ only in how
device work is issued onto the simulated machine:

=============== ======== ============ ===========================================
policy          barrier  copy engines device-to-device route
=============== ======== ============ ===========================================
``sequential``  yes      no           staged through host memory (paper-faithful)
``overlap``     no       yes          staged through host memory
``overlap+p2p`` no       yes          direct peer DMA
=============== ======== ============ ===========================================

All three are *functionally* identical — the DAG may only reorder, never
drop, the paper's dependencies — so every policy produces bitwise-equal
buffers and identical final tracker state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.errors import RuntimeApiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi
    from repro.sched.graph import LaunchPlan

__all__ = [
    "SchedulePolicy",
    "SCHEDULES",
    "select_policy",
    "AUTO_SEQUENTIAL_MAX_RATIO",
    "AUTO_P2P_MIN_RATIO",
    "auto_schedule_name",
    "estimate_plan_times",
    "auto_select_policy",
    "estimate_window_times",
    "auto_select_policy_window",
]


@dataclass(frozen=True)
class SchedulePolicy:
    """How one launch plan is issued onto the machine."""

    name: str
    #: Global device barrier between the transfer and kernel phases
    #: (Figure 4's ``all_devs_synchronize``).
    barrier: bool
    #: Issue transfers on the copy engines, gated by dataflow events, and
    #: gate each kernel partition on the transfers feeding its read set.
    overlap: bool
    #: Route device-to-device copies over direct peer DMA instead of
    #: staging them through host memory.
    p2p: bool


_POLICIES: Dict[str, SchedulePolicy] = {
    "sequential": SchedulePolicy("sequential", barrier=True, overlap=False, p2p=False),
    "overlap": SchedulePolicy("overlap", barrier=False, overlap=True, p2p=False),
    "overlap+p2p": SchedulePolicy("overlap+p2p", barrier=False, overlap=True, p2p=True),
}

#: Valid ``RuntimeConfig.schedule`` values, in documentation order.
SCHEDULES: Tuple[str, ...] = ("sequential", "overlap", "overlap+p2p")


def select_policy(name: str) -> SchedulePolicy:
    """The policy registered under ``name``."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise RuntimeApiError(
            f"unknown schedule {name!r} (choose from {', '.join(SCHEDULES)})"
        ) from None


# -- adaptive per-launch selection (schedule="auto") --------------------------

#: Below this transfer/compute ratio the DAG machinery cannot pay for
#: itself: the barrier orchestration is already transfer-free in the steady
#: state, so stay paper-faithful.
AUTO_SEQUENTIAL_MAX_RATIO = 0.02
#: Above this ratio transfers dominate the launch; route device-to-device
#: copies over peer DMA on top of overlapping them.
AUTO_P2P_MIN_RATIO = 0.5


def auto_schedule_name(transfer_time: float, compute_time: float) -> str:
    """Pick a concrete schedule from one launch's estimated time split.

    Pure decision function (unit-tested boundary): no transfers means
    nothing to hide (``sequential``); transfer-dominated launches take
    ``overlap+p2p``; the middle ground overlaps without rerouting.
    """
    if transfer_time <= 0:
        return "sequential"
    if compute_time <= 0:
        return "overlap+p2p"
    ratio = transfer_time / compute_time
    if ratio <= AUTO_SEQUENTIAL_MAX_RATIO:
        return "sequential"
    if ratio >= AUTO_P2P_MIN_RATIO:
        return "overlap+p2p"
    return "overlap"


def estimate_plan_times(api: "MultiGpuApi", plan: "LaunchPlan") -> Tuple[float, float]:
    """(transfer seconds, compute seconds) one launch plan would take alone.

    Uncongested estimates from the machine spec and the kernel cost model;
    cluster-attached runtimes price cross-node segments at the network
    rate. Machine-less (functional-only) runs fall back to byte counts —
    only the zero/non-zero distinction matters then.

    Results are memoized per api under the shared launch fingerprint
    (:func:`repro.runtime.fingerprint.plan_estimate_key` — an iteration
    loop re-estimates an identical launch shape every pass; a stencil
    ping-ponging between two buffers converges to one steady-state key per
    parity because buffer identities never enter the fingerprint); hit and
    miss counts surface in ``RunStats.estimate_cache_hits/misses``.
    """
    from repro.runtime.fingerprint import plan_estimate_key

    cache = getattr(api, "_estimate_cache", None)
    key = None
    if cache is not None:
        key = plan_estimate_key(plan)
        hit = cache.get(key)
        if hit is not None:
            api.stats.estimate_cache_hits += 1
            return hit
        api.stats.estimate_cache_misses += 1
    spec = api.spec
    if spec is None:
        result = float(sum(t.nbytes for t in plan.transfers)), 0.0
        if cache is not None:
            cache[key] = result
        return result
    cluster = getattr(api, "cluster", None)
    transfer = 0.0
    for t in plan.transfers:
        if cluster is not None and not cluster.same_node(t.owner, t.gpu):
            transfer += cluster.network_transfer_time(t.nbytes)
        else:
            transfer += spec.transfer_time(t.owner, t.gpu, t.nbytes)
    compute = 0.0
    if api.kernel_cost is not None:
        for k in plan.kernels:
            compute += api.kernel_cost(
                plan.ck.kernel, k.part.n_blocks, plan.block, plan.scalars
            )
    result = (transfer, compute)
    if cache is not None:
        cache[key] = result
    return result


def auto_select_policy(api: "MultiGpuApi", plan: "LaunchPlan") -> SchedulePolicy:
    """The concrete policy one launch runs under when ``schedule="auto"``."""
    transfer, compute = estimate_plan_times(api, plan)
    return _POLICIES[auto_schedule_name(transfer, compute)]


def estimate_window_times(
    api: "MultiGpuApi", plans: Sequence["LaunchPlan"]
) -> Tuple[float, float]:
    """Summed (transfer, compute) estimate over a fused pipeline window."""
    transfer = 0.0
    compute = 0.0
    for plan in plans:
        t, c = estimate_plan_times(api, plan)
        transfer += t
        compute += c
    return transfer, compute


def auto_select_policy_window(
    api: "MultiGpuApi", plans: Sequence["LaunchPlan"]
) -> SchedulePolicy:
    """One policy for every launch in a fused window (``schedule="auto"``).

    The decision ratio uses the *summed* estimates, so a transfer-light
    iteration buffered next to transfer-heavy ones no longer flips the
    policy launch by launch. For a single-plan window this is exactly
    :func:`auto_select_policy`.
    """
    transfer, compute = estimate_window_times(api, plans)
    return _POLICIES[auto_schedule_name(transfer, compute)]
