"""Scheduling policies for the kernel-launch replacement.

Three policies share one launch plan (the task DAG) and differ only in how
device work is issued onto the simulated machine:

=============== ======== ============ ===========================================
policy          barrier  copy engines device-to-device route
=============== ======== ============ ===========================================
``sequential``  yes      no           staged through host memory (paper-faithful)
``overlap``     no       yes          staged through host memory
``overlap+p2p`` no       yes          direct peer DMA
=============== ======== ============ ===========================================

All three are *functionally* identical — the DAG may only reorder, never
drop, the paper's dependencies — so every policy produces bitwise-equal
buffers and identical final tracker state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import RuntimeApiError

__all__ = ["SchedulePolicy", "SCHEDULES", "select_policy"]


@dataclass(frozen=True)
class SchedulePolicy:
    """How one launch plan is issued onto the machine."""

    name: str
    #: Global device barrier between the transfer and kernel phases
    #: (Figure 4's ``all_devs_synchronize``).
    barrier: bool
    #: Issue transfers on the copy engines, gated by dataflow events, and
    #: gate each kernel partition on the transfers feeding its read set.
    overlap: bool
    #: Route device-to-device copies over direct peer DMA instead of
    #: staging them through host memory.
    p2p: bool


_POLICIES: Dict[str, SchedulePolicy] = {
    "sequential": SchedulePolicy("sequential", barrier=True, overlap=False, p2p=False),
    "overlap": SchedulePolicy("overlap", barrier=False, overlap=True, p2p=False),
    "overlap+p2p": SchedulePolicy("overlap+p2p", barrier=False, overlap=True, p2p=True),
}

#: Valid ``RuntimeConfig.schedule`` values, in documentation order.
SCHEDULES: Tuple[str, ...] = ("sequential", "overlap", "overlap+p2p")


def select_policy(name: str) -> SchedulePolicy:
    """The policy registered under ``name``."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise RuntimeApiError(
            f"unknown schedule {name!r} (choose from {', '.join(SCHEDULES)})"
        ) from None
