"""A three-stage image pipeline with overlapped halo tiling over task bands.

``blur -> gradient -> threshold`` over an ``n x n`` image, decomposed into
horizontal *bands* of rows, each band one task per stage.  A band's blur
and gradient read one halo row beyond the band on each side
(:func:`~repro.tasks.footprints.region2d` clips halos at the image border),
so the derived RAW edges are *overlapped*: band ``s`` of a stage depends on
bands ``s-1, s, s+1`` of the previous stage — interior bands start as soon
as their three producers finish, without a global barrier between stages.
Iterating the pipeline feeds the thresholded output back in as the next
round's source, adding the WAR/WAW wavefront that makes round ``r+1``'s
early bands overlap round ``r``'s late ones.

The final ``stats`` task is *deliberately unanalyzable* twice over, as the
subsystem's degradation witness:

* at the **task level** its read is declared :func:`~repro.tasks.
  footprints.opaque` (a data-dependent diagonal gather), so the graph
  downgrades it to a whole-buffer footprint (``RP701``), serializes it
  against every producer (``RP702``) and brackets it with barriers;
* at the **kernel level** its reduction writes through the non-affine
  subscript ``gx*gx``, so the launch itself takes the runtime's
  single-GPU whole-buffer fallback path (``RP202``/``RP401``,
  ``stats.fallback_launches``).

Registered under ``EXTRA_WORKLOADS``; see docs/taskgraph.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.tasks import TaskGraph, opaque, region2d, span, task
from repro.workloads.common import ProblemConfig, Workload

__all__ = [
    "ImgPipeWorkload",
    "build_blur_kernel",
    "build_gradient_kernel",
    "build_threshold_kernel",
    "build_imgstat_kernel",
    "band_size",
    "THRESHOLD",
]

#: Edge-strength cutoff of the threshold stage.
THRESHOLD = 0.15


def band_size(n: int) -> int:
    """Rows per task band for an ``n x n`` image (``n`` must be divisible)."""
    rows = max(8, n // 8)
    if n % rows != 0:
        raise ValueError(f"imgpipe size {n} is not divisible by band size {rows}")
    return rows


def _band_guard(kb: KernelBuilder, row0, gx, gy0, n: int, rows: int):
    """Common launch-domain guard: thread in band, band offset in range."""
    return (gx < n) & (gy0 < rows) & (row0 >= 0) & (row0 <= n - rows)


def build_blur_kernel(n: int, rows: int) -> Kernel:
    """5-point box blur of one band (interior average, border copy)."""
    kb = KernelBuilder("blur")
    row0 = kb.scalar("row0")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gx, gy0 = kb.global_id("x"), kb.global_id("y")
    gy = row0 + gy0
    with kb.if_(_band_guard(kb, row0, gx, gy0, n, rows)):
        with kb.if_((gy >= 1) & (gy < n - 1) & (gx >= 1) & (gx < n - 1)):
            dst[gy, gx] = (
                src[gy, gx]
                + src[gy - 1, gx]
                + src[gy + 1, gx]
                + src[gy, gx - 1]
                + src[gy, gx + 1]
            ) * 0.2
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def build_gradient_kernel(n: int, rows: int) -> Kernel:
    """Central-difference edge strength of one band (zero at the border)."""
    kb = KernelBuilder("gradient")
    row0 = kb.scalar("row0")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gx, gy0 = kb.global_id("x"), kb.global_id("y")
    gy = row0 + gy0
    with kb.if_(_band_guard(kb, row0, gx, gy0, n, rows)):
        with kb.if_((gy >= 1) & (gy < n - 1) & (gx >= 1) & (gx < n - 1)):
            dst[gy, gx] = kb.abs(src[gy + 1, gx] - src[gy - 1, gx]) + kb.abs(
                src[gy, gx + 1] - src[gy, gx - 1]
            )
        with kb.otherwise():
            dst[gy, gx] = kb.f32const(0.0)
    return kb.finish()


def build_threshold_kernel(n: int, rows: int) -> Kernel:
    """Binarize one band against :data:`THRESHOLD` (no halo)."""
    kb = KernelBuilder("threshold")
    row0 = kb.scalar("row0")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gx, gy0 = kb.global_id("x"), kb.global_id("y")
    gy = row0 + gy0
    with kb.if_(_band_guard(kb, row0, gx, gy0, n, rows)):
        dst[gy, gx] = kb.select(
            src[gy, gx] > THRESHOLD, kb.f32const(1.0), kb.f32const(0.0)
        )
    return kb.finish()


def build_imgstat_kernel(n: int) -> Kernel:
    """Single-thread diagonal reduction with a *non-affine* result subscript.

    The store through ``cnt[gx*gx]`` (harmlessly index 0 for the only
    active thread) is intentionally outside the affine model: the kernel is
    unpartitionable and every launch takes the runtime's single-GPU
    whole-buffer fallback — the kernel-level half of the task-graph
    degradation story.
    """
    kb = KernelBuilder("imgstat")
    src = kb.array("src", f32, (n, n))
    cnt = kb.array("cnt", f32, (4,))
    gx, gy = kb.global_id("x"), kb.global_id("y")
    with kb.if_(gx.eq(0) & gy.eq(0)):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("y", 0, n) as y:
            kb.assign(acc, acc + src[y, y])
        cnt[gx * gx] = acc
    return kb.finish()


class ImgPipeWorkload(Workload):
    """The overlapped-tiling image pipeline (EXTRA_WORKLOADS)."""

    name = "imgpipe"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        n = cfg.size
        self.rows = band_size(n)
        self.n_bands = n // self.rows
        self.blur = build_blur_kernel(n, self.rows)
        self.gradient = build_gradient_kernel(n, self.rows)
        self.threshold = build_threshold_kernel(n, self.rows)
        self.imgstat = build_imgstat_kernel(n)
        #: The graph of the most recent :meth:`run` (stats/diagnostics).
        self.last_graph: Optional[TaskGraph] = None

    def build_kernels(self) -> List[Kernel]:
        return [self.blur, self.gradient, self.threshold, self.imgstat]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        n, rows = self.cfg.size, self.rows
        block = Dim3(x=16, y=min(16, rows))
        return Dim3(x=-(-n // block.x), y=-(-rows // block.y)), block

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = self.cfg.size
        return {"img": rng.random((n, n), dtype=np.float32)}

    def build_graph(self, api, d_src, d_blur, d_grad, d_out, d_cnt) -> TaskGraph:
        """Declare ``iterations`` pipeline rounds plus the opaque stats task."""
        n, rows, nbytes = self.cfg.size, self.rows, self.cfg.size**2 * 4
        grid, block = self.launch_config()

        def band(buf, s: int, halo: int = 0):
            return region2d(
                buf, (n, n), (s * rows - halo, (s + 1) * rows + halo), (0, n)
            )

        graph = TaskGraph("imgpipe")
        with graph:
            # Stage-major declaration: a band's halo producers (the
            # neighbouring bands of the previous stage) must precede it in
            # program order for the halo read to see their values.  The
            # overlap comes from the *graph*: each band still only waits
            # for its own three producers, never for the whole stage.
            for r in range(self.cfg.iterations):
                d_in = d_src if r == 0 else d_out
                for s in range(self.n_bands):
                    row0 = s * rows

                    @task(
                        name=f"blur[{r},{s}]",
                        reads=[band(d_in, s, halo=1)],
                        writes=[band(d_blur, s)],
                        placement=s % 16,
                    )
                    def blur_task(api, row0=row0, d_in=d_in):
                        api.launch(self.blur, grid, block, [row0, d_in, d_blur])

                for s in range(self.n_bands):
                    row0 = s * rows

                    @task(
                        name=f"grad[{r},{s}]",
                        reads=[band(d_blur, s, halo=1)],
                        writes=[band(d_grad, s)],
                        placement=s % 16,
                    )
                    def grad_task(api, row0=row0):
                        api.launch(self.gradient, grid, block, [row0, d_blur, d_grad])

                for s in range(self.n_bands):
                    row0 = s * rows

                    @task(
                        name=f"thresh[{r},{s}]",
                        reads=[band(d_grad, s)],
                        writes=[band(d_out, s)],
                        placement=s % 16,
                    )
                    def thresh_task(api, row0=row0):
                        api.launch(self.threshold, grid, block, [row0, d_grad, d_out])

            @task(
                name="stats",
                reads=[opaque(d_out, nbytes, note="data-dependent diagonal gather")],
                writes=[span(d_cnt, 0, 16)],
            )
            def stats_task(api):
                api.launch(self.imgstat, Dim3(1), Dim3(1), [d_out, d_cnt])

        return graph

    def run(
        self,
        api,
        inputs: Optional[Dict[str, np.ndarray]],
        mode: str = "graph",
        order: Optional[List[int]] = None,
    ):
        n = self.cfg.size
        nbytes = n * n * 4
        d_src = api.cudaMalloc(nbytes)
        d_blur = api.cudaMalloc(nbytes)
        d_grad = api.cudaMalloc(nbytes)
        d_out = api.cudaMalloc(nbytes)
        d_cnt = api.cudaMalloc(16)
        api.cudaMemcpy(
            d_src, inputs["img"] if inputs else None, nbytes, MemcpyKind.HostToDevice
        )
        graph = self.build_graph(api, d_src, d_blur, d_grad, d_out, d_cnt)
        self.last_graph = graph
        graph.run(api, mode=mode, order=order)
        out = np.zeros((n, n), dtype=np.float32) if inputs else None
        cnt = np.zeros(4, dtype=np.float32) if inputs else None
        api.cudaMemcpy(out, d_out, nbytes, MemcpyKind.DeviceToHost)
        api.cudaMemcpy(cnt, d_cnt, 16, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        return {"out": out, "diag_sum": cnt[:1]} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = inputs["img"]
        fifth = np.float32(0.2)
        for _ in range(self.cfg.iterations):
            blur = x.copy()
            blur[1:-1, 1:-1] = (
                x[1:-1, 1:-1] + x[:-2, 1:-1] + x[2:, 1:-1] + x[1:-1, :-2] + x[1:-1, 2:]
            ) * fifth
            grad = np.zeros_like(x)
            grad[1:-1, 1:-1] = np.abs(blur[2:, 1:-1] - blur[:-2, 1:-1]) + np.abs(
                blur[1:-1, 2:] - blur[1:-1, :-2]
            )
            x = np.where(grad > THRESHOLD, np.float32(1.0), np.float32(0.0))
        acc = np.float32(0.0)
        for y in range(x.shape[0]):  # sequential f32 sum, matching the kernel
            acc = acc + x[y, y]
        return {"out": x, "diag_sum": np.array([acc], dtype=np.float32)}
