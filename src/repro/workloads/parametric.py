"""Parametric, multi-dimensional kernel variants of the workloads.

The benchmark workloads (``hotspot``/``nbody``/``matmul`` modules) follow
CUDA benchmark practice: flat arrays with the problem size baked in as a
compile-time constant (one compilation per Table 1 size — which is also
what keeps the paper's enumerator overhead tiny, since every access set
collapses to a handful of flat intervals).

This module keeps the fully *parametric* multi-dimensional variants: array
extents are symbolic in the scalar argument ``n`` and subscripts are
multi-dimensional, so access maps are genuine ``Z^6 -> Z^2`` relations and
the enumerators scan per-row ranges (the general case of §6.1). The test
suite uses these to exercise the machinery the constant-size benchmarks
don't reach; they are fully functional end-to-end.
"""

from __future__ import annotations

from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel

__all__ = [
    "build_parametric_stencil",
    "build_parametric_matmul",
    "build_parametric_rowsum",
    "build_parametric_transpose_read",
]


def build_parametric_stencil() -> Kernel:
    """5-point stencil over a parametric 2-D grid with border copy-through."""
    kb = KernelBuilder("pstencil")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n, n))
    power = kb.array("power", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < n)):
        with kb.if_((gy > 0) & (gy < n - 1) & (gx > 0) & (gx < n - 1)):
            c = src[gy, gx]
            acc = src[gy - 1, gx] + src[gy + 1, gx] + src[gy, gx - 1] + src[gy, gx + 1]
            dst[gy, gx] = c + 0.1 * (acc - 4.0 * c) + 0.05 * power[gy, gx]
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def build_parametric_matmul() -> Kernel:
    """Dense matmul over parametric 2-D matrices."""
    kb = KernelBuilder("pmatmul")
    n = kb.scalar("n")
    a = kb.array("A", f32, (n, n))
    b = kb.array("B", f32, (n, n))
    c = kb.array("C", f32, (n, n))
    row, col = kb.global_id("y"), kb.global_id("x")
    with kb.if_((row < n) & (col < n)):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("k", 0, n) as k:
            kb.assign(acc, acc + a[row, k] * b[k, col])
        c[row, col] = acc
    return kb.finish()


def build_parametric_rowsum() -> Kernel:
    """Row reduction: one thread per row, loop over columns."""
    kb = KernelBuilder("prowsum")
    n = kb.scalar("n")
    a = kb.array("A", f32, (n, n))
    s = kb.array("S", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("j", 0, n) as j:
            kb.assign(acc, acc + a[gi, j])
        s[gi,] = acc
    return kb.finish()


def build_parametric_transpose_read() -> Kernel:
    """Writes rows while reading columns: maximal distribution mismatch."""
    kb = KernelBuilder("ptranspose")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < n)):
        dst[gy, gx] = src[gx, gy]
    return kb.finish()
