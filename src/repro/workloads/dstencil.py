"""DStencil: a decimating (strided-read) stencil for transfer-waste studies.

Each output cell averages *even* columns of an oversized source grid:

    out[gy, gx] = 0.5*(src[gy, 2gx] + src[gy, 2gx+2]) + 0.25*src[gy+1, 2gx]

The kernel is the measurement workload of the cross-launch dataflow
analyzer (``RP6xx``), engineered to exhibit both transfer pathologies at
once:

* **Bounding-range over-approximation (RP602).** The strided column
  subscript ``2*gx`` survives as an inexact image after Fourier–Motzkin
  projection (evenness cannot be expressed), so the §6.1 per-row
  enumerator ships every column between the first and last even one —
  ~50 % provable slack that :attr:`~repro.runtime.config.RuntimeConfig.\
irredundant_transfers` trims away.
* **Redundant re-transfer (RP601).** ``src`` is read-only and iterated:
  a sole-owner tracker forgets each launch's synchronization copies and
  re-ships the same halo row (and the linear-distribution mismatch) every
  iteration; ``shared_copies`` keeps them.

The row split puts ``src`` row ``p_hi`` (read via ``gy+1``) on the next
partition — a one-row halo that crosses partition seams, and on a cluster
the node fabric. Not part of the paper's Table 1 set; registered under
``EXTRA_WORKLOADS`` so the paper-faithful three-workload tables stay
untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.workloads.common import ProblemConfig, Workload

__all__ = ["DStencilWorkload", "build_dstencil_kernel", "src_shape", "BLOCK"]

BLOCK = Dim3(x=16, y=16)


def src_shape(n: int) -> Tuple[int, int]:
    """Shape of the oversized source grid for an ``n x n`` output."""
    return (n + 1, 2 * n + 2)


def build_dstencil_kernel(n: int) -> Kernel:
    """The decimating stencil for an ``n x n`` output (``n`` baked in)."""
    kb = KernelBuilder("dstencil")
    rows, cols = src_shape(n)
    src = kb.array("src", f32, (rows, cols))
    out = kb.array("out", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < n)):
        out[gy, gx] = 0.5 * (src[gy, 2 * gx] + src[gy, 2 * gx + 2]) + 0.25 * src[
            gy + 1, 2 * gx
        ]
    return kb.finish()


class DStencilWorkload(Workload):
    """The decimating-stencil transfer-waste workload (EXTRA_WORKLOADS)."""

    name = "dstencil"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        self.kernel = build_dstencil_kernel(cfg.size)

    def build_kernels(self) -> List[Kernel]:
        return [self.kernel]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        n = self.cfg.size
        blocks = -(-n // BLOCK.x)
        return Dim3(x=blocks, y=blocks), BLOCK

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"src": rng.random(src_shape(self.cfg.size), dtype=np.float32)}

    def run(self, api, inputs: Optional[Dict[str, np.ndarray]]):
        n = self.cfg.size
        rows, cols = src_shape(n)
        src_bytes = rows * cols * 4
        out_bytes = n * n * 4
        grid, block = self.launch_config()
        d_src = api.cudaMalloc(src_bytes)
        d_out = api.cudaMalloc(out_bytes)
        api.cudaMemcpy(
            d_src, inputs["src"] if inputs else None, src_bytes, MemcpyKind.HostToDevice
        )
        # The source is read-only: iterating the launch models a host loop
        # re-sampling the same grid (steady-state transfer behaviour).
        for _ in range(self.cfg.iterations):
            api.launch(self.kernel, grid, block, [d_src, d_out])
        out = np.empty((n, n), dtype=np.float32) if inputs else None
        api.cudaMemcpy(out, d_out, out_bytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        return {"out": out} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        src = inputs["src"]
        n = self.cfg.size
        half = np.float32(0.5)
        quarter = np.float32(0.25)
        even = src[:n, 0 : 2 * n : 2]
        even2 = src[:n, 2 : 2 * n + 2 : 2]
        below = src[1 : n + 1, 0 : 2 * n : 2]
        return {"out": half * (even + even2) + quarter * below}
