"""Matmul: dense square matrix product (paper §9.1).

"The second matrix of the product is read column-wise by each thread but
distributed linearly over all devices (the default distribution pattern).
This mismatched data distribution is corrected by the runtime before the
kernel starts. The resulting initial overhead together with the lack of
iterative execution limits scalability."

Each thread computes one element of C with a k-loop over A's row and B's
column (flat row-major indexing, size baked in). The read map of B
restricted to any row-band partition covers the whole matrix, so after the
linear host-to-device scatter every GPU fetches the rest of B from its
peers — the one-shot redistribution that caps the matmul speedup in the
paper's Figure 6 around 6x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.workloads.common import ProblemConfig, Workload

__all__ = ["MatmulWorkload", "build_matmul_kernel", "BLOCK"]

BLOCK = Dim3(x=16, y=16)


def build_matmul_kernel(n: int) -> Kernel:
    """C[row*n + col] = sum_k A[row*n + k] * B[k*n + col] (``n`` baked in)."""
    kb = KernelBuilder("matmul")
    a = kb.array("A", f32, (n * n,))
    b = kb.array("B", f32, (n * n,))
    c = kb.array("C", f32, (n * n,))
    row, col = kb.global_id("y"), kb.global_id("x")
    with kb.if_((row < n) & (col < n)):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("k", 0, n) as k:
            kb.assign(acc, acc + a[row * n + k] * b[k * n + col])
        c[row * n + col] = acc
    return kb.finish()


class MatmulWorkload(Workload):
    """The Matmul proxy application (Table 1 row 3)."""

    name = "matmul"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        self.kernel = build_matmul_kernel(cfg.size)

    def build_kernels(self) -> List[Kernel]:
        return [self.kernel]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        n = self.cfg.size
        blocks = -(-n // BLOCK.x)
        return Dim3(x=blocks, y=blocks), BLOCK

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = self.cfg.size
        return {
            "A": rng.standard_normal((n, n)).astype(np.float32),
            "B": rng.standard_normal((n, n)).astype(np.float32),
        }

    def run(self, api, inputs: Optional[Dict[str, np.ndarray]]):
        n = self.cfg.size
        nbytes = n * n * 4
        grid, block = self.launch_config()
        d_a = api.cudaMalloc(nbytes)
        d_b = api.cudaMalloc(nbytes)
        d_c = api.cudaMalloc(nbytes)
        api.cudaMemcpy(d_a, inputs["A"] if inputs else None, nbytes, MemcpyKind.HostToDevice)
        api.cudaMemcpy(d_b, inputs["B"] if inputs else None, nbytes, MemcpyKind.HostToDevice)
        api.launch(self.kernel, grid, block, [d_a, d_b, d_c])
        out = np.empty((n, n), dtype=np.float32) if inputs else None
        api.cudaMemcpy(out, d_c, nbytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        return {"C": out} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        # float64 accumulation gives a tight oracle for the f32 kernel.
        c = inputs["A"].astype(np.float64) @ inputs["B"].astype(np.float64)
        return {"C": c.astype(np.float32)}
