"""Hotspot: a 5-point stencil on a quadratic grid (paper §9.1).

"Hotspot is a 5-point stencil operating on a quadratic grid. [...] The
amount of computation per thread is constant and comparatively low, as are
the data requirements per thread. As a result, this benchmark is
susceptible to overheads in the distribution process and expected to
exhibit only limited scalability."

The kernel reads the current temperature grid and writes the next one
(ping-pong buffering in the host program; 1500 iterations in Table 1).
Interior cells apply the stencil; border cells copy through, so every
launch writes the full array and the trackers stay at one segment per
device — both buffers' ownership re-aligns to the partition bands after
one iteration, exactly the locality effect §8.1 describes.

The problem size is a compile-time constant (one build per Table 1 size,
like the paper's benchmarks). The grids are modelled as 2-D arrays — the
stencil's interior guard makes boundary-branch writes *strided* under flat
indexing, which no interval scan can represent exactly; with 2-D subscripts
every per-row range is exact, and since each partition writes full-width
row bands, the runtime's flat byte ranges still coalesce to a handful of
intervals per partition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.workloads.common import ProblemConfig, Workload

__all__ = ["HotspotWorkload", "build_hotspot_kernel", "BLOCK"]

BLOCK = Dim3(x=16, y=16)

#: Diffusion coefficient of the explicit heat step (stable for 2-D).
_DIFFUSION = 0.1


def build_hotspot_kernel(n: int) -> Kernel:
    """The 5-point stencil kernel for an ``n x n`` grid (``n`` baked in)."""
    kb = KernelBuilder("hotspot")
    temp_in = kb.array("temp_in", f32, (n, n))
    temp_out = kb.array("temp_out", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < n)):
        with kb.if_((gy > 0) & (gy < n - 1) & (gx > 0) & (gx < n - 1)):
            c = temp_in[gy, gx]
            acc = (
                temp_in[gy - 1, gx]
                + temp_in[gy + 1, gx]
                + temp_in[gy, gx - 1]
                + temp_in[gy, gx + 1]
            )
            temp_out[gy, gx] = c + _DIFFUSION * (acc - 4.0 * c)
        with kb.otherwise():
            temp_out[gy, gx] = temp_in[gy, gx]
    return kb.finish()


class HotspotWorkload(Workload):
    """The Hotspot proxy application (Table 1 row 1)."""

    name = "hotspot"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        self.kernel = build_hotspot_kernel(cfg.size)

    def build_kernels(self) -> List[Kernel]:
        return [self.kernel]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        n = self.cfg.size
        blocks = -(-n // BLOCK.x)
        return Dim3(x=blocks, y=blocks), BLOCK

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = self.cfg.size
        return {"temp": rng.random((n, n), dtype=np.float32)}

    def run(self, api, inputs: Optional[Dict[str, np.ndarray]]):
        n = self.cfg.size
        nbytes = n * n * 4
        grid, block = self.launch_config()
        d_a = api.cudaMalloc(nbytes)
        d_b = api.cudaMalloc(nbytes)
        api.cudaMemcpy(d_a, inputs["temp"] if inputs else None, nbytes, MemcpyKind.HostToDevice)
        for _ in range(self.cfg.iterations):
            api.launch(self.kernel, grid, block, [d_a, d_b])
            d_a, d_b = d_b, d_a
        out = np.empty((n, n), dtype=np.float32) if inputs else None
        api.cudaMemcpy(out, d_a, nbytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        return {"temp": out} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        temp = inputs["temp"].copy()
        diffusion = np.float32(_DIFFUSION)
        four = np.float32(4.0)
        for _ in range(self.cfg.iterations):
            nxt = temp.copy()
            acc = temp[:-2, 1:-1] + temp[2:, 1:-1] + temp[1:-1, :-2] + temp[1:-1, 2:]
            c = temp[1:-1, 1:-1]
            nxt[1:-1, 1:-1] = c + diffusion * (acc - four * c)
            temp = nxt
        return {"temp": temp}
