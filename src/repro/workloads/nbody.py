"""N-Body: direct gravitational simulation (paper §9.1).

"Computation per thread grows cubic with the problem size, while the data
requirements per thread grow only linearly, resulting in excellent scaling
behavior." Clustering optimizations are deliberately not applied — the
paper excludes them because dynamic clusters would produce irregular
accesses.

Layout follows CUDA practice: one flat float32 array of 4-element body
records — positions hold (x, y, z, mass), velocities (vx, vy, vz, pad) —
with the body count baked in at build time. Each thread integrates one
body and its force loop reads *every* position record; the polyhedral read
map of the position buffer is therefore the whole array, which drives the
per-step all-gather visible as transfer overhead in the paper's Figure 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.workloads.common import ProblemConfig, Workload

__all__ = ["NBodyWorkload", "build_nbody_kernel", "BLOCK", "DT", "SOFTENING"]

BLOCK = Dim3(x=128)
DT = 0.001
SOFTENING = 1e-3


def build_nbody_kernel(n: int) -> Kernel:
    """One integration step: all-pairs forces + Euler update for one body."""
    kb = KernelBuilder("nbody")
    pos_in = kb.array("pos_in", f32, (n * 4,))
    vel_in = kb.array("vel_in", f32, (n * 4,))
    pos_out = kb.array("pos_out", f32, (n * 4,))
    vel_out = kb.array("vel_out", f32, (n * 4,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        base = gi * 4
        px = kb.let("px", pos_in[base])
        py = kb.let("py", pos_in[base + 1])
        pz = kb.let("pz", pos_in[base + 2])
        ax = kb.let("ax", kb.f32const(0.0))
        ay = kb.let("ay", kb.f32const(0.0))
        az = kb.let("az", kb.f32const(0.0))
        with kb.for_range("j", 0, n) as j:
            jb = j * 4
            dx = kb.let("dx", pos_in[jb] - px)
            dy = kb.let("dy", pos_in[jb + 1] - py)
            dz = kb.let("dz", pos_in[jb + 2] - pz)
            dist2 = kb.let("dist2", dx * dx + dy * dy + dz * dz + SOFTENING)
            inv = kb.let("inv", kb.rsqrt(dist2))
            inv3 = kb.let("inv3", inv * inv * inv)
            s = kb.let("s", pos_in[jb + 3] * inv3)
            kb.assign(ax, ax + dx * s)
            kb.assign(ay, ay + dy * s)
            kb.assign(az, az + dz * s)
        vx = kb.let("vx", vel_in[base] + DT * ax)
        vy = kb.let("vy", vel_in[base + 1] + DT * ay)
        vz = kb.let("vz", vel_in[base + 2] + DT * az)
        pos_out[base] = px + DT * vx
        pos_out[base + 1] = py + DT * vy
        pos_out[base + 2] = pz + DT * vz
        pos_out[base + 3] = pos_in[base + 3]
        vel_out[base] = vx
        vel_out[base + 1] = vy
        vel_out[base + 2] = vz
        vel_out[base + 3] = vel_in[base + 3]
    return kb.finish()


class NBodyWorkload(Workload):
    """The N-Body proxy application (Table 1 row 2)."""

    name = "nbody"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        self.kernel = build_nbody_kernel(cfg.size)

    def build_kernels(self) -> List[Kernel]:
        return [self.kernel]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        n = self.cfg.size
        return Dim3(x=-(-n // BLOCK.x)), BLOCK

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = self.cfg.size
        pos = rng.standard_normal((n, 4)).astype(np.float32)
        pos[:, 3] = rng.random(n, dtype=np.float32) + 0.5  # masses
        vel = (rng.standard_normal((n, 4)) * 0.1).astype(np.float32)
        vel[:, 3] = 0.0
        return {"pos": pos, "vel": vel}

    def run(self, api, inputs: Optional[Dict[str, np.ndarray]]):
        n = self.cfg.size
        nbytes = n * 4 * 4
        grid, block = self.launch_config()
        d_pa = api.cudaMalloc(nbytes)
        d_pb = api.cudaMalloc(nbytes)
        d_va = api.cudaMalloc(nbytes)
        d_vb = api.cudaMalloc(nbytes)
        api.cudaMemcpy(d_pa, inputs["pos"] if inputs else None, nbytes, MemcpyKind.HostToDevice)
        api.cudaMemcpy(d_va, inputs["vel"] if inputs else None, nbytes, MemcpyKind.HostToDevice)
        for _ in range(self.cfg.iterations):
            api.launch(self.kernel, grid, block, [d_pa, d_va, d_pb, d_vb])
            d_pa, d_pb = d_pb, d_pa
            d_va, d_vb = d_vb, d_va
        pos = np.empty((n, 4), dtype=np.float32) if inputs else None
        vel = np.empty((n, 4), dtype=np.float32) if inputs else None
        api.cudaMemcpy(pos, d_pa, nbytes, MemcpyKind.DeviceToHost)
        api.cudaMemcpy(vel, d_va, nbytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        return {"pos": pos, "vel": vel} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        pos = inputs["pos"].copy()
        vel = inputs["vel"].copy()
        dt = np.float32(DT)
        soft = np.float32(SOFTENING)
        for _ in range(self.cfg.iterations):
            d = pos[None, :, :3] - pos[:, None, :3]  # d[i, j] = pos[j] - pos[i]
            dist2 = (d * d).sum(axis=2) + soft
            inv = np.float32(1.0) / np.sqrt(dist2)
            inv3 = inv * inv * inv
            s = pos[:, 3][None, :] * inv3  # mass[j] * inv3[i, j]
            acc = (d * s[:, :, None]).sum(axis=1, dtype=np.float32)
            new_vel = vel.copy()
            new_vel[:, :3] = vel[:, :3] + dt * acc
            new_pos = pos.copy()
            new_pos[:, :3] = pos[:, :3] + dt * new_vel[:, :3]
            pos, vel = new_pos.astype(np.float32), new_vel.astype(np.float32)
        return {"pos": pos, "vel": vel}
