"""``repro.workloads`` — the paper's three proxy applications (§9.1).

Hotspot (5-point stencil), N-Body (direct gravitational simulation) and
Matmul (dense matrix product) — chosen by the paper from the Berkeley
computational dwarfs. Each module provides the kernel (in the mini-CUDA
IR), a host program written against the CUDA-prototype API (so it runs
unmodified on the single-device reference *and* the multi-GPU runtime), a
pure-numpy reference implementation, and input generators.
"""

from repro.workloads.common import ProblemConfig, TABLE1, table1_configs, functional_config
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.nbody import NBodyWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.dstencil import DStencilWorkload
from repro.workloads.cholesky import CholeskyWorkload
from repro.workloads.imgpipe import ImgPipeWorkload

#: The paper's Table 1 proxy applications (benchmark tables iterate these).
ALL_WORKLOADS = {
    "hotspot": HotspotWorkload,
    "nbody": NBodyWorkload,
    "matmul": MatmulWorkload,
}

#: Additional study workloads outside the paper's benchmark set; merged
#: with :data:`ALL_WORKLOADS` where arbitrary workloads are accepted (CLI),
#: never iterated by the Table 1 harness.
EXTRA_WORKLOADS = {
    "dstencil": DStencilWorkload,
    "cholesky": CholeskyWorkload,
    "imgpipe": ImgPipeWorkload,
}

__all__ = [
    "ProblemConfig",
    "TABLE1",
    "table1_configs",
    "functional_config",
    "HotspotWorkload",
    "NBodyWorkload",
    "MatmulWorkload",
    "DStencilWorkload",
    "CholeskyWorkload",
    "ImgPipeWorkload",
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
]
