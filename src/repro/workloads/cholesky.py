"""Tiled Cholesky factorization driven by the ``repro.tasks`` graph frontend.

The classic right-looking tiled Cholesky (POTRF / TRSM / SYRK / GEMM over a
``T x T`` grid of ``b x b`` tiles of one square array) is *the* canonical
dynamic-task-graph workload: the four tile operations have a triangular
dependence structure that no static loop schedule expresses well, but falls
out automatically from per-tile read/write footprints:

* ``potrf_tile(k)``   — factor the diagonal tile in place,
* ``trsm_tile(i, k)`` — triangular solve of a panel tile against it,
* ``syrk_tile(i, k)`` — symmetric rank-``b`` update of a diagonal tile,
* ``gemm_tile(i, j, k)`` — rank-``b`` update of an off-diagonal tile.

Every task declares its tiles as :func:`~repro.tasks.footprints.region2d`
footprints; the graph derives all RAW/WAR/WAW edges by byte-interval
intersection — there is not a single explicit ``deps=`` in the builder.
Tile offsets are runtime scalar parameters, so one compiled kernel per
operation serves every tile; the kernels guard the offsets back into range
(``0 <= off <= n - b``), which keeps the bounds prover exact despite the
symbolic subscripts.  ``potrf_tile`` is intentionally a single-thread
kernel: its write subscripts involve no grid dimension, exercising the
unit-axes legality path (every launch axis must have extent 1).

Registered under ``EXTRA_WORKLOADS``; the paper-faithful Table 1 set stays
untouched.  See docs/taskgraph.md for the walkthrough.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import Kernel
from repro.tasks import TaskGraph, region2d, task
from repro.workloads.common import ProblemConfig, Workload

__all__ = [
    "CholeskyWorkload",
    "build_potrf_kernel",
    "build_trsm_kernel",
    "build_syrk_kernel",
    "build_gemm_kernel",
    "tile_size",
]


def tile_size(n: int) -> int:
    """Tile edge for an ``n x n`` factorization (``n`` must be divisible)."""
    b = max(8, n // 8)
    if n % b != 0:
        raise ValueError(f"cholesky size {n} is not divisible by tile size {b}")
    return b


def build_potrf_kernel(n: int, b: int) -> Kernel:
    """Unblocked in-place Cholesky of the ``b x b`` tile at ``(b0, b0)``.

    A deliberately single-thread kernel (Cholesky–Crout is sequential in
    the tile): no write subscript involves a grid dimension, so the
    legality model demands unit extent on every launch axis.
    """
    kb = KernelBuilder("potrf_tile")
    b0 = kb.scalar("b0")
    a = kb.array("a", f32, (n, n))
    gx, gy = kb.global_id("x"), kb.global_id("y")
    with kb.if_(gx.eq(0) & gy.eq(0) & (b0 >= 0) & (b0 <= n - b)):
        with kb.for_range("j", 0, b) as j:
            s = kb.let("s", a[b0 + j, b0 + j])
            with kb.for_range("m", 0, j) as m:
                kb.assign(s, s - a[b0 + j, b0 + m] * a[b0 + j, b0 + m])
            a[b0 + j, b0 + j] = kb.sqrt(s)
            with kb.for_range("i", j + 1, b) as i:
                t = kb.let("t", a[b0 + i, b0 + j])
                with kb.for_range("m2", 0, j) as m2:
                    kb.assign(t, t - a[b0 + i, b0 + m2] * a[b0 + j, b0 + m2])
                a[b0 + i, b0 + j] = t / a[b0 + j, b0 + j]
    return kb.finish()


def build_trsm_kernel(n: int, b: int) -> Kernel:
    """Solve ``A[i,k] <- A[i,k] * L(k,k)^-T`` row-parallel over the tile."""
    kb = KernelBuilder("trsm_tile")
    bi0 = kb.scalar("bi0")
    bj0 = kb.scalar("bj0")
    a = kb.array("a", f32, (n, n))
    gi, gy = kb.global_id("x"), kb.global_id("y")
    in_range = (bi0 >= 0) & (bi0 <= n - b) & (bj0 >= 0) & (bj0 <= n - b)
    with kb.if_((gi < b) & gy.eq(0) & in_range):
        with kb.for_range("k", 0, b) as k:
            t = kb.let("t", a[bi0 + gi, bj0 + k])
            with kb.for_range("m", 0, k) as m:
                kb.assign(t, t - a[bi0 + gi, bj0 + m] * a[bj0 + k, bj0 + m])
            a[bi0 + gi, bj0 + k] = t / a[bj0 + k, bj0 + k]
    return kb.finish()


def build_syrk_kernel(n: int, b: int) -> Kernel:
    """``A[i,i] <- A[i,i] - A[i,k] A[i,k]^T`` on the lower triangle only."""
    kb = KernelBuilder("syrk_tile")
    bi0 = kb.scalar("bi0")
    bk0 = kb.scalar("bk0")
    a = kb.array("a", f32, (n, n))
    gj, gi = kb.global_id("x"), kb.global_id("y")
    in_range = (bi0 >= 0) & (bi0 <= n - b) & (bk0 >= 0) & (bk0 <= n - b)
    with kb.if_((gi < b) & (gj <= gi) & in_range):
        acc = kb.let("acc", a[bi0 + gi, bi0 + gj])
        with kb.for_range("m", 0, b) as m:
            kb.assign(acc, acc - a[bi0 + gi, bk0 + m] * a[bi0 + gj, bk0 + m])
        a[bi0 + gi, bi0 + gj] = acc
    return kb.finish()


def build_gemm_kernel(n: int, b: int) -> Kernel:
    """``A[i,j] <- A[i,j] - A[i,k] A[j,k]^T`` over a full off-diagonal tile."""
    kb = KernelBuilder("gemm_tile")
    bi0 = kb.scalar("bi0")
    bj0 = kb.scalar("bj0")
    bk0 = kb.scalar("bk0")
    a = kb.array("a", f32, (n, n))
    gj, gi = kb.global_id("x"), kb.global_id("y")
    in_range = (
        (bi0 >= 0)
        & (bi0 <= n - b)
        & (bj0 >= 0)
        & (bj0 <= n - b)
        & (bk0 >= 0)
        & (bk0 <= n - b)
    )
    with kb.if_((gi < b) & (gj < b) & in_range):
        acc = kb.let("acc", a[bi0 + gi, bj0 + gj])
        with kb.for_range("m", 0, b) as m:
            kb.assign(acc, acc - a[bi0 + gi, bk0 + m] * a[bj0 + gj, bk0 + m])
        a[bi0 + gi, bj0 + gj] = acc
    return kb.finish()


class CholeskyWorkload(Workload):
    """Tiled Cholesky through the dynamic task graph (EXTRA_WORKLOADS)."""

    name = "cholesky"

    def __init__(self, cfg: ProblemConfig) -> None:
        super().__init__(cfg)
        n = cfg.size
        self.tile = tile_size(n)
        self.n_tiles = n // self.tile
        self.potrf = build_potrf_kernel(n, self.tile)
        self.trsm = build_trsm_kernel(n, self.tile)
        self.syrk = build_syrk_kernel(n, self.tile)
        self.gemm = build_gemm_kernel(n, self.tile)
        #: The graph of the most recent :meth:`run` (stats/diagnostics).
        self.last_graph: Optional[TaskGraph] = None

    def build_kernels(self) -> List[Kernel]:
        return [self.potrf, self.trsm, self.syrk, self.gemm]

    def launch_config(self) -> Tuple[Dim3, Dim3]:
        b = self.tile
        block = Dim3(x=min(16, b), y=min(16, b))
        return Dim3(x=-(-b // block.x), y=-(-b // block.y)), block

    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        n = self.cfg.size
        rng = np.random.default_rng(seed)
        m = rng.random((n, n), dtype=np.float32) - np.float32(0.5)
        # Symmetric positive definite by construction (diagonally dominant).
        a = (m @ m.T) / np.float32(n) + np.float32(n) * np.eye(n, dtype=np.float32)
        return {"a": a.astype(np.float32)}

    def build_graph(self, api, d_a) -> TaskGraph:
        """Declare the ``T x T`` tiled factorization as a task graph.

        All ordering comes from the declared tile footprints — the
        triangular POTRF/TRSM/SYRK/GEMM dependence structure is *derived*,
        never spelled out.
        """
        n, b, nt = self.cfg.size, self.tile, self.n_tiles
        grid2d, block2d = self.launch_config()

        def tile(r: int, c: int):
            return region2d(d_a, (n, n), (r * b, (r + 1) * b), (c * b, (c + 1) * b))

        graph = TaskGraph("cholesky")
        with graph:
            for k in range(nt):

                @task(
                    name=f"potrf[{k}]",
                    reads=[tile(k, k)],
                    writes=[tile(k, k)],
                    placement=k % 16,
                )
                def potrf_task(api, k=k):
                    api.launch(self.potrf, Dim3(1), Dim3(1), [k * b, d_a])

                for i in range(k + 1, nt):

                    @task(
                        name=f"trsm[{i},{k}]",
                        reads=[tile(k, k), tile(i, k)],
                        writes=[tile(i, k)],
                        placement=i % 16,
                    )
                    def trsm_task(api, i=i, k=k):
                        api.launch(
                            self.trsm, Dim3(1), Dim3(x=b), [i * b, k * b, d_a]
                        )

                for i in range(k + 1, nt):

                    @task(
                        name=f"syrk[{i},{k}]",
                        reads=[tile(i, k), tile(i, i)],
                        writes=[tile(i, i)],
                        placement=i % 16,
                    )
                    def syrk_task(api, i=i, k=k):
                        api.launch(self.syrk, grid2d, block2d, [i * b, k * b, d_a])

                    for j in range(k + 1, i):

                        @task(
                            name=f"gemm[{i},{j},{k}]",
                            reads=[tile(i, k), tile(j, k), tile(i, j)],
                            writes=[tile(i, j)],
                            placement=(i + j) % 16,
                        )
                        def gemm_task(api, i=i, j=j, k=k):
                            api.launch(
                                self.gemm,
                                grid2d,
                                block2d,
                                [i * b, j * b, k * b, d_a],
                            )

        return graph

    def run(
        self,
        api,
        inputs: Optional[Dict[str, np.ndarray]],
        mode: str = "graph",
        order: Optional[List[int]] = None,
    ):
        n = self.cfg.size
        nbytes = n * n * 4
        d_a = api.cudaMalloc(nbytes)
        api.cudaMemcpy(
            d_a, inputs["a"] if inputs else None, nbytes, MemcpyKind.HostToDevice
        )
        graph = self.build_graph(api, d_a)
        self.last_graph = graph
        graph.run(api, mode=mode, order=order)
        out = np.zeros((n, n), dtype=np.float32) if inputs else None
        api.cudaMemcpy(out, d_a, nbytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()
        # The kernels only ever touch the lower triangle; mask the
        # untouched upper-triangle input values out of the result.
        return {"factor": np.tril(out)} if inputs else None

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        lower = np.linalg.cholesky(inputs["a"].astype(np.float64))
        return {"factor": lower.astype(np.float32)}
