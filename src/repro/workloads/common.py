"""Benchmark configurations (paper Table 1) and the workload interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cuda.dim3 import Dim3
from repro.cuda.ir.kernel import Kernel

__all__ = ["ProblemConfig", "TABLE1", "table1_configs", "functional_config", "Workload"]


@dataclass(frozen=True)
class ProblemConfig:
    """One benchmark configuration (a cell of Table 1)."""

    workload: str
    size_label: str  # "small" | "medium" | "large" | "functional"
    size: int  # side length (hotspot, matmul) or body count (nbody)
    iterations: int  # 1 for matmul ("N/A" in Table 1)

    def __str__(self) -> str:
        return f"{self.workload}/{self.size_label}({self.size})"


#: Table 1 of the paper: problem sizes and iteration counts.
TABLE1: Dict[str, Dict[str, ProblemConfig]] = {
    "hotspot": {
        "small": ProblemConfig("hotspot", "small", 8_192, 1_500),
        "medium": ProblemConfig("hotspot", "medium", 16_384, 1_500),
        "large": ProblemConfig("hotspot", "large", 36_864, 1_500),
    },
    "nbody": {
        "small": ProblemConfig("nbody", "small", 65_536, 96),
        "medium": ProblemConfig("nbody", "medium", 131_072, 96),
        "large": ProblemConfig("nbody", "large", 327_680, 96),
    },
    "matmul": {
        "small": ProblemConfig("matmul", "small", 8_192, 1),
        "medium": ProblemConfig("matmul", "medium", 16_384, 1),
        "large": ProblemConfig("matmul", "large", 30_656, 1),
    },
}

#: Reduced sizes used by the functional-correctness test suite (kernels
#: really execute; bitwise comparison against the single-device reference).
_FUNCTIONAL_SIZES = {
    "hotspot": (64, 6),
    "nbody": (192, 4),
    "matmul": (48, 1),
    # Extra (non-Table-1) workloads.
    "dstencil": (64, 4),
    "cholesky": (64, 1),
    "imgpipe": (64, 2),
}


def table1_configs(workload: Optional[str] = None) -> List[ProblemConfig]:
    """All Table 1 configurations, optionally for one workload."""
    names = [workload] if workload else list(TABLE1)
    return [cfg for name in names for cfg in TABLE1[name].values()]


def functional_config(workload: str, *, size: Optional[int] = None, iterations: Optional[int] = None) -> ProblemConfig:
    """A small configuration suitable for real (numpy) execution."""
    base_size, base_iters = _FUNCTIONAL_SIZES[workload]
    return ProblemConfig(
        workload, "functional", size or base_size, iterations or base_iters
    )


class Workload(abc.ABC):
    """Common interface of the three proxy applications."""

    name: str = ""

    def __init__(self, cfg: ProblemConfig) -> None:
        if cfg.workload != self.name:
            raise ValueError(f"config {cfg} is not for workload {self.name!r}")
        self.cfg = cfg

    @abc.abstractmethod
    def build_kernels(self) -> List[Kernel]:
        """The application's kernels (pre-partitioning)."""

    @abc.abstractmethod
    def launch_config(self) -> Tuple[Dim3, Dim3]:
        """(grid, block) of the kernel launches."""

    @abc.abstractmethod
    def make_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        """Host input buffers (functional mode only)."""

    @abc.abstractmethod
    def run(self, api, inputs: Optional[Dict[str, np.ndarray]]) -> Optional[Dict[str, np.ndarray]]:
        """The host program; ``inputs`` is None in timing-only mode."""

    @abc.abstractmethod
    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Pure-numpy reference results for validation."""
