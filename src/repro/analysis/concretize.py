"""Concretizing raw accesses into parameter-free thread-coordinate sets.

The race detector and bounds prover reason about *distinct threads*, so
they operate on the pre-projection raw accesses
(:class:`~repro.compiler.access_analysis.RawAccess`) rather than the
block-granular Z^6 maps. Under a concrete
:class:`~repro.analysis.passes.LaunchContext`, every launch parameter
(``blockDim``, ``gridDim``) and integer scalar argument becomes a constant,
``blockOff.w`` folds into ``blockDim.w * blockIdx.w``, and the resulting
affine forms mention only thread coordinates and loop iterators — exactly
the parameter-free sets that :meth:`BasicSet.enumerate_points` can extract
witnesses from.

Two coordinate systems are supported:

* **gid form** ``(g_z, g_y, g_x)`` — used when every affine form of the
  access touches the grid only through ``blockOff.w + threadIdx.w`` pairs
  (the common ``global_id`` pattern). A single variable per axis keeps
  Fourier–Motzkin emptiness proofs exact for flattened subscripts.
* **split form** ``(bi_z, bi_y, bi_x, ti_z, ti_y, ti_x)`` — the general
  fallback for kernels addressing blocks or threads separately.

Distinct coordinate tuples correspond to distinct global threads in both
forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.access_analysis import (
    RawAccess,
    SymAff,
    _gid_fits,
    _gid_rename,
)
from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import eval_scalar_expr
from repro.cuda.ir.kernel import ArrayParam, Kernel
from repro.errors import LintError
from repro.poly.constraint import Constraint, Kind
from repro.poly.space import Space

__all__ = [
    "UnmodelledAccess",
    "GID_COORDS",
    "SPLIT_COORDS",
    "ConcreteAccess",
    "concretize_access",
    "concrete_scalars",
    "concrete_extents",
    "thread_box_constraints",
    "split_gid_coord",
]

#: Thread coordinates of the gid form, slowest-varying first.
GID_COORDS = ("g_z", "g_y", "g_x")
#: Thread coordinates of the split form, slowest-varying first.
SPLIT_COORDS = ("bi_z", "bi_y", "bi_x", "ti_z", "ti_y", "ti_x")


class UnmodelledAccess(LintError):
    """An access cannot be expressed as a concrete affine relation.

    Raised during concretization (non-affine subscripts, unknown scalar
    values, symbolic array extents) and caught by the passes, which then
    emit an advisory instead of a hard verdict.
    """

    exit_code = 32


@dataclass(frozen=True)
class ConcreteAccess:
    """A raw access with all launch parameters substituted away.

    ``indices`` and the affine forms inside ``domain`` mention only the
    chosen thread ``coords`` plus the access's loop ``iterators``.
    """

    raw: RawAccess
    #: ``GID_COORDS`` or ``SPLIT_COORDS``.
    coords: Tuple[str, ...]
    indices: Tuple[SymAff, ...]
    #: Concretized DNF domain (same shape as ``raw.domain``).
    domain: Tuple[Tuple[Tuple[Kind, SymAff], ...], ...]
    iterators: Tuple[str, ...]


def concrete_scalars(kernel: Kernel, launch_scalars: Mapping[str, int]) -> Dict[str, int]:
    """Concrete values for every name the affine forms may treat as symbolic."""
    values: Dict[str, int] = dict(launch_scalars)
    for p in kernel.scalar_params:
        if p.dtype.is_float:
            continue
        if p.name not in values:
            raise UnmodelledAccess(
                f"no concrete value for scalar parameter {p.name!r}; "
                "pass it via the launch context"
            )
    return values


def _grid_consts(grid: Dim3, block: Dim3) -> Dict[str, int]:
    return {
        "bd_z": block.z,
        "bd_y": block.y,
        "bd_x": block.x,
        "gd_z": grid.z,
        "gd_y": grid.y,
        "gd_x": grid.x,
    }


def _resolve(
    aff: SymAff,
    consts: Mapping[str, int],
    allowed: Sequence[str],
    block: Dim3,
    *,
    gid: bool,
) -> SymAff:
    """Fold constants and ``blockOff`` products; keep only allowed names."""
    if gid:
        aff = _gid_rename(aff)
    const = aff.const
    terms: Dict[str, int] = {}
    for name, coeff in aff.terms:
        if name in consts:
            const += coeff * consts[name]
        elif not gid and name.startswith("bo_"):
            # blockOff.w == blockDim.w * blockIdx.w at a concrete launch.
            axis = name[3:]
            bi = f"bi_{axis}"
            terms[bi] = terms.get(bi, 0) + coeff * block.axis(axis)
        elif name in allowed:
            terms[name] = terms.get(name, 0) + coeff
        else:
            raise UnmodelledAccess(f"symbolic name {name!r} survives concretization")
    return SymAff(const, tuple(sorted((n, c) for n, c in terms.items() if c != 0)))


def concretize_access(
    access: RawAccess,
    kernel: Kernel,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    *,
    force_split: bool = False,
) -> ConcreteAccess:
    """Concretize one raw access, preferring the gid coordinate form.

    ``force_split`` selects the split form even for gid-fitting accesses —
    needed when the access is paired with one that does not fit (both sides
    of a conflict set must share a coordinate system).
    """
    if access.indices is None:
        raise UnmodelledAccess(
            f"{access.mode} of {access.array!r} has a non-affine subscript"
        )
    consts = _grid_consts(grid, block)
    consts.update(concrete_scalars(kernel, scalars))
    affs = list(access.indices) + [aff for conj in access.domain for _, aff in conj]
    gid = (not force_split) and all(_gid_fits(a) for a in affs)
    coords = GID_COORDS if gid else SPLIT_COORDS
    allowed = tuple(coords) + access.iterators
    indices = tuple(
        _resolve(a, consts, allowed, block, gid=gid) for a in access.indices
    )
    domain = tuple(
        tuple((kind, _resolve(a, consts, allowed, block, gid=gid)) for kind, a in conj)
        for conj in access.domain
    )
    return ConcreteAccess(
        raw=access, coords=coords, indices=indices, domain=domain,
        iterators=access.iterators,
    )


def concrete_extents(array: ArrayParam, scalars: Mapping[str, int]) -> Tuple[int, ...]:
    """Evaluate an array's shape expressions to concrete extents."""
    try:
        return tuple(int(eval_scalar_expr(e, dict(scalars))) for e in array.shape)
    except Exception as exc:  # noqa: BLE001 - any failure means "symbolic"
        raise UnmodelledAccess(
            f"extent of array {array.name!r} is not concrete: {exc}"
        ) from exc


def thread_box_constraints(
    space: Space,
    coords: Tuple[str, ...],
    grid: Dim3,
    block: Dim3,
    rename: Optional[Mapping[str, str]] = None,
) -> List[Constraint]:
    """Launch-box bounds ``0 <= coord < extent`` for one copy of the coords."""
    from repro.poly.affine import Aff

    extents: Dict[str, int] = {}
    if coords == GID_COORDS:
        for axis in ("z", "y", "x"):
            extents[f"g_{axis}"] = grid.axis(axis) * block.axis(axis)
    else:
        for axis in ("z", "y", "x"):
            extents[f"bi_{axis}"] = grid.axis(axis)
            extents[f"ti_{axis}"] = block.axis(axis)
    out: List[Constraint] = []
    for name, extent in extents.items():
        bound = (rename or {}).get(name, name)
        v = Aff.var(space, bound)
        out.append(Constraint.ineq(v))
        out.append(Constraint.ineq(Aff.const(space, extent - 1) - v))
    return out


def split_gid_coord(g: int, axis: str, block: Dim3) -> Tuple[int, int]:
    """Decompose a global-thread coordinate into ``(blockIdx, threadIdx)``."""
    bd = block.axis(axis)
    return g // bd, g % bd
