"""Registry of stable diagnostic codes emitted by the static-analysis passes.

Every finding the linter can produce has a stable ``RPxxx`` code so scripts,
CI gates and the documentation (``docs/static-analysis.md``) can refer to it
without parsing message text. Codes are grouped by hundreds:

* ``RP1xx`` — data races between distinct global threads,
* ``RP2xx`` — partitioning legality (paper §4: exactness, injectivity),
* ``RP3xx`` — memory-safety (out-of-bounds accesses),
* ``RP4xx`` — behaviour downgrades (single-GPU fallback),
* ``RP5xx`` — internal analysis failures,
* ``RP6xx`` — cross-launch transfer efficiency (redundant re-transfers,
  bounding-range over-approximation, envelope-capping serialization),
* ``RP7xx`` — task-graph footprint boundaries (:mod:`repro.tasks`: accesses
  the affine interval model cannot analyze and the serialization they induce).

The default severity and fix hint of each code live here; individual
diagnostics may override the severity (e.g. an unconfirmed race witness is
reported at a lower severity than a replay-confirmed one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.diagnostics import Severity

__all__ = ["CodeInfo", "REGISTRY", "code_info"]


@dataclass(frozen=True)
class CodeInfo:
    """Static metadata of one diagnostic code."""

    code: str
    title: str
    severity: Severity
    hint: str


def _entry(code: str, title: str, severity: Severity, hint: str) -> CodeInfo:
    return CodeInfo(code, title, severity, hint)


#: All known diagnostic codes, keyed by code string.
REGISTRY: Dict[str, CodeInfo] = {
    c.code: c
    for c in (
        _entry(
            "RP101",
            "write-write race",
            Severity.ERROR,
            "two distinct threads store to the same array cell; make the "
            "write subscript injective over threads or guard one writer out",
        ),
        _entry(
            "RP102",
            "read-write race",
            Severity.WARNING,
            "one thread reads a cell another thread writes in the same "
            "launch; the value read depends on scheduling — double-buffer "
            "the array or split the kernel",
        ),
        _entry(
            "RP103",
            "race check skipped",
            Severity.ADVICE,
            "an access could not be modelled precisely enough for the race "
            "analysis; rewrite the subscript/guard in affine form",
        ),
        _entry(
            "RP201",
            "non-injective write map",
            Severity.ERROR,
            "the polyhedral write map sends two distinct threads to one "
            "cell; such kernels cannot be partitioned (paper §4)",
        ),
        _entry(
            "RP202",
            "write map cannot be modelled exactly",
            Severity.ERROR,
            "write maps must be exact for partitioning; use an affine "
            "subscript/guard or supply a write annotation (paper §11)",
        ),
        _entry(
            "RP203",
            "block-addressed write needs a concrete block size",
            Severity.WARNING,
            "injectivity of a blockIdx-addressed write is only provable for "
            "a concrete blockDim; pass block_dim / lint with a launch config",
        ),
        _entry(
            "RP204",
            "grid axis requires unit extent at launch",
            Severity.ADVICE,
            "the write map does not distinguish threads along this axis, so "
            "launches must keep its grid extent at 1",
        ),
        _entry(
            "RP205",
            "write-scan exactness validated at launch",
            Severity.ADVICE,
            "the flat write subscript's projection is not provably exact "
            "statically; the runtime re-validates coverage per launch",
        ),
        _entry(
            "RP206",
            "read map over-approximated",
            Severity.ADVICE,
            "a read could not be modelled exactly and is over-approximated "
            "by the whole array; correct, but transfers more than needed",
        ),
        _entry(
            "RP301",
            "possible out-of-bounds write",
            Severity.ERROR,
            "a thread's store subscript can leave the declared extent; add "
            "or tighten the guard",
        ),
        _entry(
            "RP302",
            "possible out-of-bounds read",
            Severity.ERROR,
            "a thread's load subscript can leave the declared extent; add "
            "or tighten the guard",
        ),
        _entry(
            "RP303",
            "bounds not provable statically",
            Severity.ADVICE,
            "the access (or the array extent) is not affine/concrete, so "
            "the prover cannot decide in-boundedness",
        ),
        _entry(
            "RP401",
            "kernel falls back to single-GPU execution",
            Severity.WARNING,
            "the kernel is not partitionable and will run on one device "
            "(the paper's fallback); see the accompanying RP2xx diagnostic",
        ),
        _entry(
            "RP501",
            "analysis pass failed",
            Severity.ERROR,
            "a lint pass raised an unexpected error on this kernel; this is "
            "a bug in the analysis, not in the kernel",
        ),
        _entry(
            "RP601",
            "redundant cross-launch re-transfer",
            Severity.WARNING,
            "a later launch re-transfers bytes the destination already holds "
            "a valid copy of (sole-owner tracking forgets copies); enable "
            "shared_copies / irredundant_transfers to keep them",
        ),
        _entry(
            "RP602",
            "bounding-range transfer over-approximation",
            Severity.WARNING,
            "the per-row bounding enumerator ships bytes the partition "
            "provably never reads (strided or guarded access slack); enable "
            "irredundant_transfers to trim copies to the exact read set",
        ),
        _entry(
            "RP603",
            "false cross-launch serialization from envelope capping",
            Severity.ADVICE,
            "the dataflow log's capped read/write envelopes overlap although "
            "the exact ranges are disjoint, so the scheduler serializes "
            "launches that are actually independent; raise the envelope cap "
            "or split the array",
        ),
        _entry(
            "RP701",
            "task footprint not affine-analyzable",
            Severity.WARNING,
            "a task's declared access could not be lowered to exact byte "
            "intervals; the graph degrades it to a whole-buffer footprint "
            "with barrier synchronization — declare the access as a span or "
            "2-D region to restore interval-precise dependence edges",
        ),
        _entry(
            "RP702",
            "whole-buffer serialization induced by opaque task footprint",
            Severity.ADVICE,
            "a dependence edge exists only because an opaque footprint "
            "conservatively covers the whole buffer; with an affine "
            "declaration the two tasks would be independent or ordered by "
            "a narrower interval",
        ),
    )
}


def code_info(code: str) -> CodeInfo:
    """Look up a code's metadata; raises ``KeyError`` for unknown codes."""
    return REGISTRY[code]
