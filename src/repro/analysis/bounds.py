"""Out-of-bounds prover for kernel array accesses.

For every affine access under a concrete launch this pass builds, per array
dimension, the two *violation sets* — threads whose subscript is negative,
and threads whose subscript reaches past the declared extent — and proves
them empty or extracts a witness thread plus the offending index value.

The violation sets deliberately do **not** include the array-shape clamp the
Z^6 access maps carry (those maps intersect with ``0 <= a_j < extent`` by
construction, which would make an image-inside-extent check vacuous); they
are rebuilt from the pre-projection raw accesses instead.

Emptiness is decided in two stages: a sound rational Fourier–Motzkin check
first, then exact integer enumeration of the (bounded, parameter-free)
candidate set — so a "possible out-of-bounds" finding always comes with a
concrete witness, and rationally-feasible-but-integer-empty sets are
correctly reported safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.concretize import (
    GID_COORDS,
    UnmodelledAccess,
    concrete_extents,
    concretize_access,
    split_gid_coord,
    thread_box_constraints,
)
from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.passes import AnalysisPass, LaunchContext, register_pass
from repro.compiler.access_analysis import KernelAccessInfo
from repro.errors import PolyhedralError
from repro.poly.basic_set import BasicSet
from repro.poly.constraint import Constraint
from repro.poly.space import Space

__all__ = ["BoundsProver"]


@register_pass
class BoundsProver(AnalysisPass):
    """Prove every access in bounds, or exhibit a violating thread."""

    name = "bounds"

    def run(self, info: KernelAccessInfo, launch: LaunchContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        kernel = info.kernel
        arrays = {p.name: p for p in kernel.array_params}
        advised: Set[Tuple[str, str]] = set()
        found: Set[Tuple[str, str]] = set()

        for raw in info.raw_accesses:
            key = (raw.array, raw.mode)
            if key in found:
                continue
            code = "RP301" if raw.mode == "write" else "RP302"
            if raw.indices is None or raw.approx_domain:
                if key not in advised:
                    advised.add(key)
                    why = (
                        "non-affine subscript"
                        if raw.indices is None
                        else "a non-affine guard was dropped"
                    )
                    diags.append(
                        make_diagnostic(
                            "RP303",
                            f"{raw.mode} of {raw.array!r}: {why}; "
                            "in-boundedness cannot be decided statically",
                            kernel=kernel.name,
                            array=raw.array,
                            pass_name=self.name,
                        )
                    )
                continue
            try:
                access = concretize_access(
                    raw, kernel, launch.grid, launch.block, launch.scalars
                )
                extents = concrete_extents(arrays[raw.array], launch.scalars)
            except UnmodelledAccess as exc:
                if key not in advised:
                    advised.add(key)
                    diags.append(
                        make_diagnostic(
                            "RP303",
                            f"{raw.mode} of {raw.array!r}: {exc}",
                            kernel=kernel.name,
                            array=raw.array,
                            pass_name=self.name,
                        )
                    )
                continue

            verdict = self._violation_witness(access, extents, launch)
            if verdict is None:
                continue
            if verdict == "undecided":
                if key not in advised:
                    advised.add(key)
                    diags.append(
                        make_diagnostic(
                            "RP303",
                            f"{raw.mode} of {raw.array!r}: the candidate "
                            "violation set is unbounded; cannot decide",
                            kernel=kernel.name,
                            array=raw.array,
                            pass_name=self.name,
                        )
                    )
                continue
            found.add(key)
            dim, value, extent, witness = verdict
            thread = witness["thread"]
            diags.append(
                make_diagnostic(
                    code,
                    f"thread block{tuple(thread['block'])} thread"
                    f"{tuple(thread['thread'])} {raw.mode}s {raw.array}"
                    f"[dim {dim}] at index {value}, outside extent {extent}",
                    kernel=kernel.name,
                    array=raw.array,
                    witness=witness,
                    pass_name=self.name,
                )
            )
        return diags

    def _violation_witness(self, access, extents, launch: LaunchContext):
        """First out-of-bounds witness, None if safe, "undecided" if unbounded."""
        from repro.poly.affine import Aff

        dims = access.coords + access.iterators
        space = Space.set_space(dims, ())
        box = thread_box_constraints(
            space, access.coords, launch.grid, launch.block, None
        )
        undecided = False
        for conj in access.domain:
            cons = box + [Constraint(k, a.to_aff(space).vec) for k, a in conj]
            for j, idx in enumerate(access.indices):
                idx_aff = idx.to_aff(space)
                for violation in (
                    Constraint.ineq(-idx_aff - 1),  # idx <= -1
                    Constraint.ineq(idx_aff - extents[j]),  # idx >= extent
                ):
                    cand = BasicSet(space, cons + [violation])
                    if cand.is_empty():
                        continue
                    try:
                        for point in cand.enumerate_points(max_points=1):
                            values = dict(zip(dims, point))
                            return self._package(access, launch, values, j, extents[j])
                    except PolyhedralError:
                        undecided = True
        return "undecided" if undecided else None

    @staticmethod
    def _package(access, launch: LaunchContext, values: Dict[str, int], j: int, extent: int):
        if access.coords == GID_COORDS:
            pairs = [
                split_gid_coord(values[f"g_{axis}"], axis, launch.block)
                for axis in ("z", "y", "x")
            ]
            thread = {"block": [p[0] for p in pairs], "thread": [p[1] for p in pairs]}
        else:
            thread = {
                "block": [values[f"bi_{axis}"] for axis in ("z", "y", "x")],
                "thread": [values[f"ti_{axis}"] for axis in ("z", "y", "x")],
            }
        idx_value = access.indices[j].const + sum(
            c * values[n] for n, c in access.indices[j].terms
        )
        witness = {
            "array": access.raw.array,
            "dim": j,
            "index": int(idx_value),
            "extent": int(extent),
            "thread": thread,
            "iterators": {n: values[n] for n in access.iterators},
        }
        return j, int(idx_value), int(extent), witness
