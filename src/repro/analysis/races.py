"""Polyhedral race detection between distinct global threads.

For every array a kernel stores to, this pass builds the conflict relation
"two *different* threads touch the same cell in one launch" — write–write
(``RP101``) and read–write (``RP102``) — as a concrete, parameter-free
polyhedral set, and either proves it empty or extracts a witness: two
thread coordinates plus the colliding array cell, obtained as the first
point of the set's lexicographic enumeration (a lexmin).

This is the MARS-style treatment of conflict relations as first-class
polyhedral objects (Ferry et al.), applied to the paper's §4 setting: the
relation is the negation of write-map injectivity at thread granularity.
Unlike the block-granular legality check, the race sets keep per-thread
identity, so a finding names the exact colliding threads.

Witnesses are optionally *confirmed* by replaying the kernel on the IR
interpreter with per-lane write tracing and, when the witness spans two
blocks, with the kernel split into two partitions
(:mod:`repro.analysis.replay`) — static finding, dynamic confirmation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.concretize import (
    GID_COORDS,
    SPLIT_COORDS,
    UnmodelledAccess,
    concrete_extents,
    concretize_access,
    split_gid_coord,
    thread_box_constraints,
)
from repro.analysis.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.analysis.passes import AnalysisPass, LaunchContext, register_pass
from repro.compiler.access_analysis import RawAccess, _gid_fits
from repro.compiler.access_analysis import KernelAccessInfo
from repro.errors import PolyhedralError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet
from repro.poly.constraint import Constraint
from repro.poly.space import Space

__all__ = ["RaceDetector"]

#: Sentinel returned when a conflict set is possibly non-empty but no
#: integer witness could be enumerated (unbounded set).
_POSSIBLE = object()


def _fits_gid(access: RawAccess) -> bool:
    affs = list(access.indices or ()) + [a for conj in access.domain for _, a in conj]
    return all(_gid_fits(a) for a in affs)


def _coords_to_thread(
    values: Dict[str, int], coords: Tuple[str, ...], suffix: str, block
) -> Dict[str, List[int]]:
    """Witness-point values -> {"block": [z,y,x], "thread": [z,y,x]}."""
    if coords == GID_COORDS:
        pairs = [
            split_gid_coord(values[f"g_{axis}__{suffix}"], axis, block)
            for axis in ("z", "y", "x")
        ]
        return {"block": [p[0] for p in pairs], "thread": [p[1] for p in pairs]}
    return {
        "block": [values[f"bi_{axis}__{suffix}"] for axis in ("z", "y", "x")],
        "thread": [values[f"ti_{axis}__{suffix}"] for axis in ("z", "y", "x")],
    }


@register_pass
class RaceDetector(AnalysisPass):
    """Find write–write and read–write conflicts between distinct threads."""

    name = "races"

    def run(self, info: KernelAccessInfo, launch: LaunchContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        kernel = info.kernel
        arrays = {p.name: p for p in kernel.array_params}
        writes: Dict[str, List[RawAccess]] = {}
        reads: Dict[str, List[RawAccess]] = {}
        for raw in info.raw_accesses:
            (writes if raw.mode == "write" else reads).setdefault(raw.array, []).append(raw)

        for array, ws in writes.items():
            skipped = [w for w in ws if w.indices is None]
            if skipped:
                diags.append(
                    make_diagnostic(
                        "RP103",
                        f"a write to {array!r} has a non-affine subscript; "
                        "race analysis covers the remaining accesses only",
                        kernel=kernel.name,
                        array=array,
                        pass_name=self.name,
                    )
                )
            modelled = [w for w in ws if w.indices is not None]
            try:
                extents: Optional[Tuple[int, ...]] = concrete_extents(
                    arrays[array], launch.scalars
                )
            except UnmodelledAccess:
                extents = None

            ww = self._first_conflict(
                kernel, launch, modelled, modelled, arrays[array].ndim, extents
            )
            if ww is not None:
                diags.append(
                    self._race_diag("RP101", kernel, launch, array, ww, kind="ww")
                )

            rs = [r for r in reads.get(array, []) if r.indices is not None]
            rw = self._first_conflict(
                kernel, launch, modelled, rs, arrays[array].ndim, extents,
                cross_only=True,
            )
            if rw is not None:
                diags.append(
                    self._race_diag("RP102", kernel, launch, array, rw, kind="rw")
                )
        return diags

    # -- conflict-set construction ------------------------------------------

    def _first_conflict(
        self,
        kernel,
        launch: LaunchContext,
        group_a: List[RawAccess],
        group_b: List[RawAccess],
        ndim: int,
        extents: Optional[Tuple[int, ...]],
        *,
        cross_only: bool = False,
    ):
        """First witness over all access pairs, or None / the _POSSIBLE marker.

        ``cross_only`` pairs every A with every B (read–write); otherwise the
        groups are identical and symmetric pairs are visited once.
        """
        possible = None
        for i, a in enumerate(group_a):
            others = group_b if cross_only else group_a[i:]
            for b in others:
                same = (not cross_only) and a is b
                try:
                    found = self._pair_conflict(
                        kernel, launch, a, b, ndim, extents, same_access=same
                    )
                except UnmodelledAccess:
                    continue
                if found is _POSSIBLE:
                    possible = (_POSSIBLE, a, b)
                elif found is not None:
                    return (found, a, b)
        return possible

    def _pair_conflict(
        self,
        kernel,
        launch: LaunchContext,
        raw_a: RawAccess,
        raw_b: RawAccess,
        ndim: int,
        extents: Optional[Tuple[int, ...]],
        *,
        same_access: bool,
    ):
        grid, block = launch.grid, launch.block
        force_split = not (_fits_gid(raw_a) and _fits_gid(raw_b))
        a = concretize_access(
            raw_a, kernel, grid, block, launch.scalars, force_split=force_split
        )
        b = concretize_access(
            raw_b, kernel, grid, block, launch.scalars, force_split=force_split
        )
        ren_a = {n: f"{n}__A" for n in a.coords + a.iterators}
        ren_b = {n: f"{n}__B" for n in b.coords + b.iterators}
        cells = tuple(f"c{j}" for j in range(ndim))
        dims = (
            tuple(ren_a[c] for c in a.coords)
            + tuple(ren_b[c] for c in b.coords)
            + tuple(ren_a[i] for i in a.iterators)
            + tuple(ren_b[i] for i in b.iterators)
            + cells
        )
        space = Space.set_space(dims, ())

        base: List[Constraint] = []
        base += thread_box_constraints(space, a.coords, grid, block, ren_a)
        base += thread_box_constraints(space, b.coords, grid, block, ren_b)
        for j in range(ndim):
            cell = Aff.var(space, f"c{j}")
            base.append(Constraint.eq(cell - a.indices[j].rename(ren_a).to_aff(space)))
            base.append(Constraint.eq(cell - b.indices[j].rename(ren_b).to_aff(space)))
            if extents is not None:
                base.append(Constraint.ineq(cell))
                base.append(Constraint.ineq(Aff.const(space, extents[j] - 1) - cell))

        pairs = list(zip((ren_a[c] for c in a.coords), (ren_b[c] for c in b.coords)))
        possible = False
        for conj_a in a.domain:
            cons_a = [Constraint(k, aff.rename(ren_a).to_aff(space).vec) for k, aff in conj_a]
            for conj_b in b.domain:
                cons = (
                    base
                    + cons_a
                    + [Constraint(k, aff.rename(ren_b).to_aff(space).vec) for k, aff in conj_b]
                )
                for case in self._distinctness_cases(space, pairs, both_directions=not same_access):
                    cand = BasicSet(space, cons + case)
                    if cand.is_empty():
                        continue
                    try:
                        for point in cand.enumerate_points(max_points=1):
                            return dict(zip(dims, point))
                    except PolyhedralError:
                        possible = True
        return _POSSIBLE if possible else None

    @staticmethod
    def _distinctness_cases(space, pairs, *, both_directions: bool):
        """Lex-ordered case split of ``thread_a != thread_b``.

        Case ``k``: the first ``k`` coordinates are equal and the ``k``-th is
        strictly ordered. With ``both_directions`` both strict orders are
        produced (distinct source accesses are not symmetric); otherwise only
        ``a < b`` (a self-pair's witness set is symmetric).
        """
        for k, (na, nb) in enumerate(pairs):
            eqs = [
                Constraint.eq(Aff.var(space, pa) - Aff.var(space, pb))
                for pa, pb in pairs[:k]
            ]
            lt = Constraint.ineq(Aff.var(space, nb) - Aff.var(space, na) - 1)
            yield eqs + [lt]
            if both_directions:
                gt = Constraint.ineq(Aff.var(space, na) - Aff.var(space, nb) - 1)
                yield eqs + [gt]

    # -- diagnostic construction --------------------------------------------

    def _race_diag(
        self, code: str, kernel, launch: LaunchContext, array: str, found, *, kind: str
    ) -> Diagnostic:
        payload, raw_a, raw_b = found
        approx = raw_a.approx_domain or raw_b.approx_domain
        if payload is _POSSIBLE:
            return make_diagnostic(
                code,
                f"conflicting accesses to {array!r} by distinct threads cannot "
                "be ruled out (no finite witness could be enumerated)",
                kernel=kernel.name,
                array=array,
                severity=Severity.WARNING,
                pass_name=self.name,
            )
        # Reconstruct per-copy coordinate systems from the point's dim names.
        def coords_of(suffix: str):
            return GID_COORDS if f"g_z__{suffix}" in payload else SPLIT_COORDS

        thread_a = _coords_to_thread(payload, coords_of("A"), "A", launch.block)
        thread_b = _coords_to_thread(payload, coords_of("B"), "B", launch.block)
        ndim = sum(1 for k in payload if k.startswith("c") and k[1:].isdigit())
        cell = [payload[f"c{j}"] for j in range(ndim)]
        witness = {
            "array": array,
            "cell": cell,
            "thread_a": thread_a,
            "thread_b": thread_b,
            "confirmed": None,
        }
        severity = Severity.ERROR if code == "RP101" else Severity.WARNING
        if launch.replay:
            from repro.analysis.replay import confirm_witness

            confirmed = confirm_witness(
                kernel, launch.grid, launch.block, launch.scalars, witness, kind=kind
            )
            witness["confirmed"] = confirmed
            if confirmed is False:
                severity = Severity.WARNING if code == "RP101" else Severity.ADVICE
        elif approx:
            severity = Severity.WARNING
        verb = "write" if kind == "ww" else ("write/read" if kind == "rw" else kind)
        msg = (
            f"distinct threads block{tuple(thread_a['block'])} thread"
            f"{tuple(thread_a['thread'])} and block{tuple(thread_b['block'])} "
            f"thread{tuple(thread_b['thread'])} both {verb} {array}"
            f"[{', '.join(str(c) for c in cell)}]"
        )
        if witness["confirmed"] is True:
            msg += " (confirmed by interpreter replay)"
        elif witness["confirmed"] is False:
            msg += " (replay could not reproduce the collision; possibly spurious)"
        return make_diagnostic(
            code,
            msg,
            kernel=kernel.name,
            array=array,
            witness=witness,
            severity=severity,
            pass_name=self.name,
        )
