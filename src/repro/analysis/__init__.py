"""Static-analysis layer: a lint pass framework over kernels' access maps.

Builds on the polyhedral application model (paper §4) to answer questions
the compiler pipeline never asks explicitly: do two distinct threads race on
a cell (:mod:`repro.analysis.races`), can any thread leave an array's bounds
(:mod:`repro.analysis.bounds`), and what exactly makes a kernel
(non-)partitionable (:mod:`repro.analysis.partitionability`)? Findings are
:class:`~repro.analysis.diagnostics.Diagnostic` records with stable codes
(:mod:`repro.analysis.codes`), rendered as text or JSON
(:mod:`repro.analysis.render`) and surfaced by the ``repro lint`` CLI.

The typical entry point is :func:`lint_kernels`.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.analysis.codes import REGISTRY, CodeInfo, code_info
from repro.analysis.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.analysis.passes import (
    AnalysisPass,
    LaunchContext,
    LintReport,
    PassManager,
    register_pass,
    registered_passes,
)
from repro.analysis.render import render_json, render_text, validate_report_json
from repro.compiler.access_analysis import analyze_kernel
from repro.cuda.dim3 import Dim3
from repro.cuda.ir.kernel import Kernel

__all__ = [
    "Severity",
    "Diagnostic",
    "make_diagnostic",
    "CodeInfo",
    "REGISTRY",
    "code_info",
    "LaunchContext",
    "AnalysisPass",
    "register_pass",
    "registered_passes",
    "PassManager",
    "LintReport",
    "render_text",
    "render_json",
    "validate_report_json",
    "lint_kernels",
]


def lint_kernels(
    kernels: Sequence[Kernel],
    *,
    grid,
    block,
    scalars: Optional[Mapping[str, int]] = None,
    replay: bool = True,
    passes: Optional[Sequence[str]] = None,
    n_gpus: int = 4,
    launches: int = 2,
    irredundant: bool = False,
) -> LintReport:
    """Run the static-analysis passes over a set of kernels.

    Args:
        kernels: the application's kernels (pre-partitioning).
        grid, block: the concrete launch configuration (ints, tuples or
            :class:`~repro.cuda.dim3.Dim3`).
        scalars: concrete values for integer scalar kernel parameters.
        replay: confirm race witnesses on the IR interpreter.
        passes: subset of registered pass names (default: the default-on
            passes; the opt-in ``dataflow`` pass runs only when named).
        n_gpus: device count the dataflow analyzer partitions for.
        launches: back-to-back launches the dataflow analyzer models.
        irredundant: model the irredundant-transfer remedy; the dataflow
            pass then reports only waste that remains after it.
    """
    launch = LaunchContext(
        grid=Dim3.of(grid),
        block=Dim3.of(block),
        scalars=dict(scalars or {}),
        replay=replay,
        n_gpus=n_gpus,
        launches=launches,
        irredundant=irredundant,
    )
    infos = [analyze_kernel(k) for k in kernels]
    return PassManager(passes).run(infos, launch)
