"""Renderers for lint reports: pretty text and machine-readable JSON.

The JSON layout is the documented interchange schema (see
``docs/static-analysis.md``); :func:`validate_report_json` checks an
arbitrary parsed document against it and is exercised by the test suite and
CI so the schema cannot drift silently.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.diagnostics import Severity
from repro.analysis.passes import LintReport
from repro.errors import LintError

__all__ = ["render_text", "render_json", "validate_report_json", "JSON_VERSION"]

#: Version of the JSON report layout; bumped on incompatible changes.
JSON_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding, summary line last.

    Identical per-partition findings are collapsed
    (:meth:`LintReport.deduplicated`); the summary counts the rendered
    (deduplicated) findings so text, JSON and exit codes agree.
    """
    diags = report.deduplicated()
    lines: List[str] = []
    for diag in diags:
        lines.append(diag.format())
        if diag.witness:
            lines.append(f"         witness: {json.dumps(diag.witness, sort_keys=True)}")
        if diag.hint:
            lines.append(f"         hint: {diag.hint}")
    lines.append(
        f"{len(report.kernels)} kernel(s): "
        f"{sum(1 for d in diags if d.severity == Severity.ERROR)} error(s), "
        f"{sum(1 for d in diags if d.severity == Severity.WARNING)} warning(s), "
        f"{sum(1 for d in diags if d.severity == Severity.ADVICE)} advice"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The documented JSON report (stable field set, deduplicated findings)."""
    diags = report.deduplicated()
    doc = {
        "version": JSON_VERSION,
        "tool": "repro-lint",
        "summary": {
            "kernels": len(report.kernels),
            "errors": sum(1 for d in diags if d.severity == Severity.ERROR),
            "warnings": sum(1 for d in diags if d.severity == Severity.WARNING),
            "advice": sum(1 for d in diags if d.severity == Severity.ADVICE),
        },
        "diagnostics": [d.to_dict() for d in diags],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


_SEVERITIES = {s.label for s in Severity}
_DIAG_FIELDS = {
    "code": str,
    "title": str,
    "severity": str,
    "kernel": str,
    "message": str,
    "pass": str,
}
_DIAG_OPTIONAL = {"array": str, "hint": str, "witness": dict}
_SUMMARY_FIELDS = ("kernels", "errors", "warnings", "advice")


def validate_report_json(doc: Any) -> None:
    """Raise :class:`LintError` unless ``doc`` matches the report schema."""
    from repro.analysis.codes import REGISTRY

    if not isinstance(doc, dict):
        raise LintError("report must be a JSON object")
    if doc.get("version") != JSON_VERSION:
        raise LintError(f"unsupported report version {doc.get('version')!r}")
    if doc.get("tool") != "repro-lint":
        raise LintError(f"unexpected tool field {doc.get('tool')!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        raise LintError("missing summary object")
    for key in _SUMMARY_FIELDS:
        if not isinstance(summary.get(key), int) or summary[key] < 0:
            raise LintError(f"summary.{key} must be a non-negative integer")
    diags = doc.get("diagnostics")
    if not isinstance(diags, list):
        raise LintError("diagnostics must be a list")
    counts = {"errors": 0, "warnings": 0, "advice": 0}
    for i, d in enumerate(diags):
        if not isinstance(d, dict):
            raise LintError(f"diagnostics[{i}] must be an object")
        for key, typ in _DIAG_FIELDS.items():
            if not isinstance(d.get(key), typ):
                raise LintError(f"diagnostics[{i}].{key} must be a {typ.__name__}")
        for key, typ in _DIAG_OPTIONAL.items():
            if d.get(key) is not None and not isinstance(d[key], typ):
                raise LintError(
                    f"diagnostics[{i}].{key} must be null or a {typ.__name__}"
                )
        if d["code"] not in REGISTRY:
            raise LintError(f"diagnostics[{i}].code {d['code']!r} is not registered")
        if d["severity"] not in _SEVERITIES:
            raise LintError(f"diagnostics[{i}].severity {d['severity']!r} is invalid")
        if d["severity"] == "error":
            counts["errors"] += 1
        elif d["severity"] == "warning":
            counts["warnings"] += 1
        else:
            counts["advice"] += 1
    for key in ("errors", "warnings", "advice"):
        if summary[key] != counts[key]:
            raise LintError(
                f"summary.{key} ({summary[key]}) does not match the "
                f"diagnostics list ({counts[key]})"
            )
