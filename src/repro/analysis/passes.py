"""Pass framework of the static-analysis layer.

Passes are small classes registered by name; a :class:`PassManager` runs a
selection of them over the polyhedral analysis results of an application's
kernels (one :class:`~repro.compiler.access_analysis.KernelAccessInfo` per
kernel) under a concrete :class:`LaunchContext`, and collects every
:class:`~repro.analysis.diagnostics.Diagnostic` into a :class:`LintReport`.

A pass that raises is itself reported as an ``RP501`` diagnostic instead of
aborting the run — the linter must always produce a report.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.analysis.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.compiler.access_analysis import KernelAccessInfo
from repro.cuda.dim3 import Dim3
from repro.errors import LintError

__all__ = [
    "LaunchContext",
    "AnalysisPass",
    "register_pass",
    "registered_passes",
    "PassManager",
    "LintReport",
]


@dataclass(frozen=True)
class LaunchContext:
    """The concrete launch a lint run reasons about.

    The race detector and bounds prover operate on *concrete* launches: grid
    and block extents and integer scalar arguments are fixed, which makes
    every access relation parameter-free and therefore enumerable (witness
    extraction needs bounded, parameter-free sets).
    """

    grid: Dim3
    block: Dim3
    #: Concrete values of the kernel's integer scalar parameters.
    scalars: Mapping[str, int] = field(default_factory=dict)
    #: Confirm race witnesses by replaying on the IR interpreter.
    replay: bool = True
    #: Device count the cross-launch dataflow analyzer partitions for.
    n_gpus: int = 4
    #: How many back-to-back launches of each kernel the dataflow analyzer
    #: models (steady-state redundancy needs at least two).
    launches: int = 2
    #: Model the irredundant-transfer remedy (shared copies + bounding-range
    #: trimming) instead of the default runtime: the dataflow pass then only
    #: reports waste that *remains* after the remedy.
    irredundant: bool = False

    def block_dim_zyx(self) -> Tuple[int, int, int]:
        """Block extents in (z, y, x) order (the legality API's convention)."""
        return self.block.zyx()


class AnalysisPass(abc.ABC):
    """One static-analysis pass over a kernel's access information."""

    #: Stable registry name (also stamped on emitted diagnostics).
    name: str = ""
    #: Whether ``PassManager(None)`` includes the pass. Opt-in passes (the
    #: cross-launch dataflow analyzer, which needs a multi-launch model the
    #: caller must opt into) set this False and run only when named.
    default: bool = True

    @abc.abstractmethod
    def run(self, info: KernelAccessInfo, launch: LaunchContext) -> List[Diagnostic]:
        """Analyze one kernel; return the findings (possibly empty)."""


_REGISTRY: Dict[str, Type[AnalysisPass]] = {}


def register_pass(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
    """Class decorator adding a pass to the global registry."""
    if not cls.name:
        raise LintError(f"analysis pass {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise LintError(f"duplicate analysis pass name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> Dict[str, Type[AnalysisPass]]:
    """Snapshot of the pass registry (name -> class), in registration order."""
    _ensure_builtin_passes()
    return dict(_REGISTRY)


def _ensure_builtin_passes() -> None:
    # The built-in pass modules self-register on import; importing them here
    # keeps `PassManager()` usable without callers knowing the module list.
    from repro.analysis import bounds, dataflow, partitionability, races  # noqa: F401


@dataclass
class LintReport:
    """All diagnostics of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Names of the kernels that were analyzed (also the empty-finding ones).
    kernels: List[str] = field(default_factory=list)

    def extend(self, other: "LintReport") -> None:
        """Merge another report into this one (multi-workload lint runs)."""
        self.diagnostics.extend(other.diagnostics)
        self.kernels.extend(k for k in other.kernels if k not in self.kernels)

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly this severity."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def max_severity(self) -> Optional[Severity]:
        """Highest severity present, or None for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def failed(self, fail_on: Optional[Severity]) -> bool:
        """True when any finding reaches the failure threshold."""
        if fail_on is None:
            return False
        worst = self.max_severity()
        return worst is not None and worst >= fail_on

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered most-severe first, then by code and location.

        The message is the final tie-breaker so equal-location findings (one
        per byte interval, say) render in a deterministic order — JSON output
        must be byte-stable across runs.
        """
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, d.kernel, d.array or "", d.message),
        )

    def deduplicated(self) -> List[Diagnostic]:
        """:meth:`sorted` with identical per-partition findings collapsed.

        Partition-granular passes repeat one finding per partition; findings
        whose witnesses carry a ``partition`` index and the same byte
        interval (``lo``/``hi``) under the same (code, kernel, array)
        collapse into one diagnostic listing every partition, suffixed with
        the partition count. Findings without those witness keys pass
        through untouched.
        """
        from dataclasses import replace

        out: List[Diagnostic] = []
        groups: Dict[tuple, int] = {}  # dedup key -> index into out
        partitions: Dict[int, List[int]] = {}
        for d in self.sorted():
            w = d.witness or {}
            if not ("partition" in w and "lo" in w and "hi" in w):
                out.append(d)
                continue
            key = (d.code, d.kernel, d.array, w["lo"], w["hi"])
            if key in groups:
                partitions[groups[key]].append(w["partition"])
            else:
                groups[key] = len(out)
                partitions[len(out)] = [w["partition"]]
                out.append(d)
        for idx, parts in partitions.items():
            if len(parts) <= 1:
                continue
            d = out[idx]
            witness = dict(d.witness)
            witness["partition"] = min(parts)
            witness["partitions"] = sorted(parts)
            out[idx] = replace(
                d,
                message=f"{d.message} [{len(parts)} partitions]",
                witness=witness,
            )
        return out


class PassManager:
    """Runs analysis passes and aggregates their findings.

    ``pass_names`` selects a subset of the registry (default: every
    registered pass, in registration order).
    """

    def __init__(self, pass_names: Optional[Sequence[str]] = None) -> None:
        _ensure_builtin_passes()
        if pass_names is None:
            names = [n for n, cls in _REGISTRY.items() if cls.default]
        else:
            unknown = [n for n in pass_names if n not in _REGISTRY]
            if unknown:
                raise LintError(f"unknown analysis pass(es): {', '.join(unknown)}")
            names = list(pass_names)
        self.passes: List[AnalysisPass] = [_REGISTRY[n]() for n in names]

    def run(
        self, infos: Sequence[KernelAccessInfo], launch: LaunchContext
    ) -> LintReport:
        """Run every configured pass over every kernel."""
        report = LintReport()
        for info in infos:
            report.kernels.append(info.kernel.name)
            for pass_ in self.passes:
                try:
                    report.diagnostics.extend(pass_.run(info, launch))
                except Exception as exc:  # noqa: BLE001 - reported, not raised
                    report.diagnostics.append(
                        make_diagnostic(
                            "RP501",
                            f"pass {pass_.name!r} failed: {exc}",
                            kernel=info.kernel.name,
                            pass_name=pass_.name,
                        )
                    )
        return report
