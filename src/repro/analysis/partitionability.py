"""Partitionability lint: the §4 legality verdicts as diagnostics.

The compiler pipeline decides partitionability by raising (and catching)
exceptions deep inside ``compile_app``. This pass re-runs the same legality
machinery (:mod:`repro.compiler.legality`) but reports the outcome as
structured diagnostics: hard rejections (``RP201``/``RP202``/``RP203``, each
paired with an ``RP401`` single-GPU-fallback warning) as well as the
advisory facts a clean kernel still carries — unit-extent axis requirements
(``RP204``), launch-time coverage validation (``RP205``) and
over-approximated read maps (``RP206``).

The diagnostic codes match the codes embedded in
``CompiledKernel.model.reject_reason`` (see :func:`repro.errors.format_with_code`),
so ``repro analyze`` and ``repro lint`` agree on why a kernel was rejected.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.analysis.passes import AnalysisPass, LaunchContext, register_pass
from repro.compiler.access_analysis import KernelAccessInfo
from repro.compiler.legality import check_write_access
from repro.compiler.strategy import choose_strategy
from repro.errors import PartitioningError

__all__ = ["PartitionabilityLint"]


@register_pass
class PartitionabilityLint(AnalysisPass):
    """Re-express legality/strategy/coverage verdicts as diagnostics."""

    name = "partitionability"

    def run(self, info: KernelAccessInfo, launch: LaunchContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        kernel = info.kernel

        if not info.partitionable:
            reason = info.reject_reason or "kernel is not partitionable"
            diags.append(
                make_diagnostic(
                    "RP202", reason, kernel=kernel.name, pass_name=self.name
                )
            )
            diags.append(self._fallback(kernel.name, reason))
            return diags

        unit_axes: set = set()
        needs_coverage = False
        rejected = False
        for access in info.writes.values():
            try:
                axes, cov = check_write_access(
                    access, block_dim=launch.block_dim_zyx()
                )
                unit_axes |= set(axes)
                needs_coverage = needs_coverage or cov
            except PartitioningError as exc:
                rejected = True
                code = exc.diagnostic_code or "RP201"
                severity = Severity.WARNING if code == "RP203" else Severity.ERROR
                diags.append(
                    make_diagnostic(
                        code,
                        str(exc),
                        kernel=kernel.name,
                        array=access.array,
                        severity=severity,
                        pass_name=self.name,
                    )
                )
        if rejected:
            diags.append(self._fallback(kernel.name, "write-map legality failed"))
            return diags

        strategy = choose_strategy(info)
        for axis in sorted(unit_axes):
            extent = launch.grid.axis(axis)
            state = (
                "satisfied by this launch"
                if extent == 1
                else f"VIOLATED by this launch (extent {extent})"
            )
            diags.append(
                make_diagnostic(
                    "RP204",
                    f"the write maps do not distinguish threads along grid "
                    f"axis {axis!r}; launches must keep its extent at 1 "
                    f"({state})",
                    kernel=kernel.name,
                    severity=Severity.ADVICE if extent == 1 else Severity.ERROR,
                    pass_name=self.name,
                )
            )
        if needs_coverage:
            diags.append(
                make_diagnostic(
                    "RP205",
                    "the flat write subscript's exactness is re-validated "
                    f"at launch time (split axis {strategy.axis!r})",
                    kernel=kernel.name,
                    pass_name=self.name,
                )
            )
        for access in info.reads.values():
            if not access.exact:
                diags.append(
                    make_diagnostic(
                        "RP206",
                        f"the read map of {access.array!r} is over-approximated; "
                        "partitions may transfer more of it than they use",
                        kernel=kernel.name,
                        array=access.array,
                        pass_name=self.name,
                    )
                )
        return diags

    def _fallback(self, kernel_name: str, reason: str) -> Diagnostic:
        return make_diagnostic(
            "RP401",
            f"kernel will execute on a single GPU ({reason})",
            kernel=kernel_name,
            pass_name=self.name,
        )
