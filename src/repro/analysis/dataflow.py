"""Cross-launch dataflow analysis: MAIRS-style irredundant transfer sets.

The paper's §6.1 enumerators ship *bounding* per-row ranges, and the §8
tracker (sole-owner mode) forgets every copy a synchronization made — so
iterative applications both re-transfer data the destination already holds
and transfer bytes the kernel provably never reads. This module makes that
waste a first-class polyhedral object, in the spirit of MAIRS (Maximal
Atomic Irredundant Sets; Ferry et al., see PAPERS.md):

* :func:`exact_read_ranges` / :class:`ExactReadOracle` — the *exact* flat
  byte set one partition reads of one array, obtained by enumerating the
  thread-granular raw accesses (the race detector's concretization) over
  the partition's block box. Sound: any failure to model an access returns
  ``None`` and the caller keeps the bounding ranges.
* :func:`analyze_transfers` — replays ``launches`` back-to-back launches of
  one kernel against a real :class:`~repro.runtime.tracker.SegmentTracker`
  (the same planning code the runtime uses) and classifies every would-be
  transfer byte as *required*, *redundant* (destination already holds a
  valid copy) or *over-approximated* (bounding-range slack outside the
  exact read set). The per-array read sets are also decomposed into
  maximal atomic irredundant sets — maximal byte runs with identical
  reader sets (:func:`repro.poly.intervals.atomic_decomposition`).
* :class:`DataflowPass` — an opt-in lint pass surfacing the waste as
  ``RP601`` (redundant re-transfer), ``RP602`` (bounding-range slack) and
  ``RP603`` (false cross-launch serialization from the dataflow log's
  envelope capping).
* :func:`runtime_exact_read_ranges` — the runtime hook
  :attr:`~repro.runtime.config.RuntimeConfig.irredundant_transfers` uses to
  trim planned synchronization copies to the exact read set.

The analyzer and the runtime share the planning primitives
(:func:`~repro.runtime.sync.plan_stale_copies_tiered`,
:func:`~repro.runtime.sync.trim_copies`), so their byte counts agree
exactly — ``repro bench redundancy`` cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.concretize import (
    GID_COORDS,
    UnmodelledAccess,
    concrete_extents,
    concretize_access,
    thread_box_constraints,
)
from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.passes import AnalysisPass, LaunchContext, register_pass
from repro.compiler.access_analysis import KernelAccessInfo
from repro.compiler.enumerators import Enumerator, EnumeratorTable
from repro.compiler.strategy import Partition, choose_strategy
from repro.cuda.dim3 import Dim3
from repro.errors import PolyhedralError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet
from repro.poly.constraint import Constraint
from repro.poly.intervals import (
    Atom,
    atomic_decomposition,
    intersect_intervals,
    normalize_intervals,
    subtract_intervals,
    total_bytes,
)
from repro.poly.space import Space
from repro.runtime.memcpy import linear_chunks
from repro.runtime.sync import plan_stale_copies_tiered, trim_copies
from repro.runtime.tracker import SegmentTracker

__all__ = [
    "ExactReadOracle",
    "exact_read_ranges",
    "runtime_exact_read_ranges",
    "TransferFlow",
    "DataflowSummary",
    "analyze_transfers",
    "DataflowPass",
]

#: Enumeration budget of one (access, partition) read-set extraction. The
#: oracle gives up (returns None → no trimming) beyond it; lint contexts
#: use functional-size launches, far below the cap.
MAX_READ_POINTS = 200_000


# ---------------------------------------------------------------------------
# Exact read sets
# ---------------------------------------------------------------------------


def _partition_box_constraints(
    space: Space,
    coords: Tuple[str, ...],
    partition: Partition,
    block: Dim3,
) -> List[Constraint]:
    """Restrict one copy of the thread coords to the partition's block box."""
    out: List[Constraint] = []
    for axis in ("z", "y", "x"):
        lo, hi = partition.range_of(axis)
        if coords == GID_COORDS:
            bd = block.axis(axis)
            v = Aff.var(space, f"g_{axis}")
            out.append(Constraint.ineq(v - Aff.const(space, lo * bd)))
            out.append(Constraint.ineq(Aff.const(space, hi * bd - 1) - v))
        else:
            v = Aff.var(space, f"bi_{axis}")
            out.append(Constraint.ineq(v - Aff.const(space, lo)))
            out.append(Constraint.ineq(Aff.const(space, hi - 1) - v))
    return out


def _element_runs(elements: Sequence[int]) -> List[Tuple[int, int]]:
    """Sorted distinct flat elements -> merged half-open element runs."""
    runs: List[Tuple[int, int]] = []
    for e in sorted(set(elements)):
        if runs and e == runs[-1][1]:
            runs[-1] = (runs[-1][0], e + 1)
        else:
            runs.append((e, e + 1))
    return runs


def exact_read_ranges(
    info: KernelAccessInfo,
    array: str,
    extents: Sequence[int],
    elem_size: int,
    partition: Partition,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    *,
    max_points: int = MAX_READ_POINTS,
) -> Optional[List[Tuple[int, int]]]:
    """Exact flat byte ranges ``partition`` reads of ``array``, or ``None``.

    Every read raw access of the array is concretized (the race detector's
    machinery), restricted to the partition's block box, and its integer
    points enumerated; the accessed cells are flattened row-major and
    merged. The result over-approximates the true read set only through
    approximate *domains* (dropped non-affine guards) — never under: any
    access that cannot be modelled at all makes the whole oracle return
    ``None``, and the caller keeps the untrimmed bounding ranges. Sound by
    construction for :func:`~repro.runtime.sync.trim_copies`.
    """
    if partition.is_empty:
        return []
    reads = [
        raw
        for raw in info.raw_accesses
        if raw.mode == "read" and raw.array == array
    ]
    elements: set = set()
    strides = [1] * len(extents)
    for d in range(len(extents) - 2, -1, -1):
        strides[d] = strides[d + 1] * extents[d + 1]
    n_elems = strides[0] * extents[0] if extents else 0
    for raw in reads:
        if raw.indices is None:
            return None
        try:
            acc = concretize_access(raw, info.kernel, grid, block, scalars)
        except UnmodelledAccess:
            return None
        dims = acc.coords + acc.iterators
        space = Space.set_space(dims, ())
        base = thread_box_constraints(space, acc.coords, grid, block)
        base += _partition_box_constraints(space, acc.coords, partition, block)
        for conj in acc.domain or ((),):
            cons = base + [
                Constraint(kind, aff.to_aff(space).vec) for kind, aff in conj
            ]
            cand = BasicSet(space, cons)
            if cand.is_empty():
                continue
            try:
                for point in cand.enumerate_points(max_points=max_points):
                    values = dict(zip(dims, point))
                    flat = 0
                    for j, aff in enumerate(acc.indices):
                        val = aff.const + sum(
                            coeff * values[name] for name, coeff in aff.terms
                        )
                        # Clamp like the runtime's guarded accesses would;
                        # phantom out-of-range points (approximate domains)
                        # only widen the kept set — still sound.
                        val = min(max(val, 0), extents[j] - 1)
                        flat += val * strides[j]
                    elements.add(flat)
            except PolyhedralError:
                return None
    if n_elems and len(elements) > n_elems:  # pragma: no cover - safety net
        return None
    return [(lo * elem_size, hi * elem_size) for lo, hi in _element_runs(elements)]


class ExactReadOracle:
    """Memoized :func:`exact_read_ranges` for one kernel's access info."""

    def __init__(self, info: KernelAccessInfo, *, max_points: int = MAX_READ_POINTS):
        self.info = info
        self.max_points = max_points
        self._cache: Dict[Tuple, Optional[List[Tuple[int, int]]]] = {}

    def read_ranges(
        self,
        array: str,
        extents: Sequence[int],
        elem_size: int,
        partition: Partition,
        grid: Dim3,
        block: Dim3,
        scalars: Mapping[str, int],
    ) -> Optional[List[Tuple[int, int]]]:
        key = (
            array,
            tuple(extents),
            elem_size,
            partition.as_tuple(),
            grid,
            block,
            tuple(sorted(scalars.items())),
        )
        if key not in self._cache:
            self._cache[key] = exact_read_ranges(
                self.info,
                array,
                extents,
                elem_size,
                partition,
                grid,
                block,
                scalars,
                max_points=self.max_points,
            )
        return self._cache[key]


def runtime_exact_read_ranges(
    api,
    info: KernelAccessInfo,
    enum: Enumerator,
    partition: Partition,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
) -> Optional[List[Tuple[int, int]]]:
    """The runtime's entry point: exact read byte ranges, or ``None``.

    An *exact* enumerator image emits exact per-row ranges already (each
    convex piece is row-contiguous), so there is no slack to trim and the
    enumeration cost is skipped. Oracles are memoized per kernel on the
    api object — iterative applications re-ask for identical partitions
    every launch.
    """
    if enum.exact:
        return None
    oracles = api.__dict__.setdefault("_exact_read_oracles", {})
    oracle = oracles.get(info.kernel.name)
    if oracle is None:
        oracle = oracles[info.kernel.name] = ExactReadOracle(info)
    return oracle.read_ranges(
        enum.array, tuple(shape), elem_size, partition, grid, block, scalars
    )


# ---------------------------------------------------------------------------
# Cross-launch transfer simulation
# ---------------------------------------------------------------------------


@dataclass
class TransferFlow:
    """Transfer classification for one (launch, array, destination)."""

    launch: int
    array: str
    gpu: int
    #: Bytes actually transferred (after sharer skips and trimming).
    required: int = 0
    #: Bytes a sole-owner tracker would have re-transferred (destination
    #: already holds a valid copy).
    redundant: int = 0
    redundant_inter: int = 0
    #: Bounding-range slack bytes outside the exact read set.
    overapprox: int = 0
    overapprox_inter: int = 0
    #: Byte ranges behind the counts (envelope witnesses for diagnostics).
    transferred_ranges: List[Tuple[int, int]] = field(default_factory=list)
    redundant_ranges: List[Tuple[int, int]] = field(default_factory=list)
    slack_ranges: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class DataflowSummary:
    """Result of :func:`analyze_transfers` for one kernel."""

    kernel: str
    n_gpus: int
    launches: int
    irredundant: bool
    flows: List[TransferFlow] = field(default_factory=list)
    #: MAIRS decomposition of each read array's per-partition read sets.
    atoms: Dict[str, List[Atom]] = field(default_factory=dict)
    #: Arrays the simulation had to skip (symbolic extents).
    unmodelled: List[str] = field(default_factory=list)
    #: Read arrays whose exact read set could not be computed (no trimming).
    inexact_arrays: List[str] = field(default_factory=list)

    def total(self, name: str) -> int:
        """Sum of one counter over every launch."""
        return sum(getattr(f, name) for f in self.flows)

    def steady(self, name: str) -> int:
        """Sum of one counter over the final (steady-state) launch."""
        last = self.launches - 1
        return sum(getattr(f, name) for f in self.flows if f.launch == last)

    def steady_flows(self) -> List[TransferFlow]:
        last = self.launches - 1
        return [f for f in self.flows if f.launch == last]


def analyze_transfers(
    info: KernelAccessInfo,
    *,
    n_gpus: int,
    launches: int,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    irredundant: bool = False,
    cluster=None,
    use_codegen: bool = True,
    oracle: Optional[ExactReadOracle] = None,
    enums: Optional[EnumeratorTable] = None,
) -> DataflowSummary:
    """Replay ``launches`` identical launches and classify transfer bytes.

    The model is the runtime's own: a linear host-to-device distribution
    initializes one :class:`SegmentTracker` per read array, each launch
    plans every partition's synchronization copies in device order with
    :func:`plan_stale_copies_tiered` (registering the destination as a
    sharer of every copied range, as ``shared_copies`` mode does), then
    marks the write sets. With ``irredundant`` the planned copies are
    trimmed to the exact read set first — exactly the
    ``irredundant_transfers`` runtime path. Byte counts therefore match
    the runtime's ``RunStats`` counters for the same schedule of launches.

    ``redundant`` counts what a *sole-owner* tracker would have
    re-transferred; ``overapprox`` counts bounding-range slack (only
    non-zero with ``irredundant``, which is when it is measured).
    """
    summary = DataflowSummary(
        kernel=info.kernel.name,
        n_gpus=n_gpus,
        launches=launches,
        irredundant=irredundant,
    )
    strategy = choose_strategy(info)
    parts = strategy.partitions(grid, n_gpus)
    enums = enums or EnumeratorTable.build(info, use_codegen=use_codegen)
    arrays = {p.name: p for p in info.kernel.array_params}
    oracle = oracle or ExactReadOracle(info)

    read_enums = enums.for_kernel(info.kernel.name, "read")
    write_enums = enums.for_kernel(info.kernel.name, "write")

    # Per-array byte model: extents, element size, tracker, read byte ranges
    # per partition (launch-invariant for identical launches).
    trackers: Dict[str, SegmentTracker] = {}
    meta: Dict[str, Tuple[Tuple[int, ...], int]] = {}
    read_ranges: Dict[str, Dict[int, List[Tuple[int, int]]]] = {}
    for enum in read_enums:
        try:
            extents = concrete_extents(arrays[enum.array], scalars)
        except UnmodelledAccess:
            summary.unmodelled.append(enum.array)
            continue
        elem = arrays[enum.array].dtype.size
        nbytes = elem
        for e in extents:
            nbytes *= e
        meta[enum.array] = (extents, elem)
        tracker = SegmentTracker(nbytes)
        for dev_idx, lo, hi in linear_chunks(nbytes, n_gpus):
            tracker.update(lo, hi, dev_idx)
        trackers[enum.array] = tracker
        per_part: Dict[int, List[Tuple[int, int]]] = {}
        for gpu, part in enumerate(parts):
            ranges, _ = enum.element_ranges(part, block, grid, scalars, extents)
            per_part[gpu] = [(lo * elem, hi * elem) for lo, hi in ranges]
        read_ranges[enum.array] = per_part
        summary.atoms[enum.array] = atomic_decomposition(per_part)

    for launch in range(launches):
        # Synchronization phase: plan (and apply sharer registration) in
        # device order — the sequential runtime's Figure-4 orchestration.
        for enum in read_enums:
            if enum.array not in trackers:
                continue
            tracker = trackers[enum.array]
            extents, elem = meta[enum.array]
            for gpu, part in enumerate(parts):
                ranges = read_ranges[enum.array][gpu]
                if not ranges:
                    continue
                flow = TransferFlow(launch=launch, array=enum.array, gpu=gpu)
                segments = tracker.query_many(list(ranges))
                flow.redundant_ranges = normalize_intervals(
                    (s.start, s.end)
                    for s in segments
                    if gpu in s.holders and s.owner != gpu
                )
                copies, avoided, avoided_inter = plan_stale_copies_tiered(
                    segments, gpu, cluster
                )
                flow.redundant = avoided
                flow.redundant_inter = avoided_inter
                if irredundant and copies:
                    keep = oracle.read_ranges(
                        enum.array, extents, elem, part, grid, block, scalars
                    ) if not enum.exact else None
                    if keep is None and not enum.exact:
                        if enum.array not in summary.inexact_arrays:
                            summary.inexact_arrays.append(enum.array)
                    if keep is not None:
                        planned = [(s.start, s.end) for s in copies]
                        copies, over, over_inter = trim_copies(
                            copies, keep, gpu, cluster
                        )
                        flow.overapprox = over
                        flow.overapprox_inter = over_inter
                        flow.slack_ranges = subtract_intervals(planned, keep)
                for seg in copies:
                    flow.required += seg.nbytes
                    flow.transferred_ranges.append((seg.start, seg.end))
                    tracker.add_sharer(seg.start, seg.end, gpu)
                summary.flows.append(flow)
        # Update phase: every partition's writes invalidate sharer copies.
        for enum in write_enums:
            if enum.array not in trackers:
                continue
            tracker = trackers[enum.array]
            extents, elem = meta[enum.array]
            for gpu, part in enumerate(parts):
                ranges, _ = enum.element_ranges(part, block, grid, scalars, extents)
                byte_rngs = [(lo * elem, hi * elem) for lo, hi in ranges]
                if byte_rngs:
                    tracker.update_many(byte_rngs, gpu)
    return summary


# ---------------------------------------------------------------------------
# The lint pass
# ---------------------------------------------------------------------------


def _envelope(ranges: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
    return (min(lo for lo, _ in ranges), max(hi for _, hi in ranges))


@register_pass
class DataflowPass(AnalysisPass):
    """Cross-launch transfer waste: RP601/RP602/RP603.

    Opt-in (``default = False``): the pass models a multi-launch multi-GPU
    execution, which only makes sense when the caller provides a launch
    context sized for it (``repro lint --dataflow``).
    """

    name = "dataflow"
    default = False

    def run(self, info: KernelAccessInfo, launch: LaunchContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        if not info.partitionable or launch.n_gpus < 2 or not info.reads:
            return diags
        # The multi-launch transfer model needs concrete values for every
        # scalar parameter (enumerators substitute them per launch); a lint
        # context without them (e.g. tile-offset kernels driven by a task
        # graph) has no meaningful launch sequence to replay — skip.
        if any(p.name not in launch.scalars for p in info.kernel.scalar_params):
            return diags
        oracle = ExactReadOracle(info)
        enums = EnumeratorTable.build(info)
        common = dict(
            n_gpus=launch.n_gpus,
            launches=max(2, launch.launches),
            grid=launch.grid,
            block=launch.block,
            scalars=launch.scalars,
            oracle=oracle,
            enums=enums,
        )
        if not launch.irredundant:
            base = analyze_transfers(info, irredundant=False, **common)
            diags += self._redundancy_diags(info, base)
            trimmed = analyze_transfers(info, irredundant=True, **common)
            diags += self._overapprox_diags(info, trimmed)
        diags += self._serialization_diags(info, launch, enums)
        return diags

    # -- RP601 ---------------------------------------------------------------

    def _redundancy_diags(
        self, info: KernelAccessInfo, base: DataflowSummary
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for flow in base.steady_flows():
            if flow.redundant <= 0:
                continue
            lo, hi = _envelope(flow.redundant_ranges)
            atoms = base.atoms.get(flow.array, [])
            shared = sum(a.nbytes for a in atoms if a.multiplicity > 1)
            diags.append(
                make_diagnostic(
                    "RP601",
                    f"every launch re-transfers {flow.redundant} bytes of "
                    f"{flow.array!r} to partition {flow.gpu} although it "
                    "already holds a valid copy (sole-owner tracking "
                    "forgets synchronization copies)",
                    kernel=info.kernel.name,
                    array=flow.array,
                    witness={
                        "partition": flow.gpu,
                        "lo": lo,
                        "hi": hi,
                        "bytes": flow.redundant,
                        "launch": flow.launch,
                        "shared_read_bytes": shared,
                    },
                    pass_name=self.name,
                )
            )
        return diags

    # -- RP602 ---------------------------------------------------------------

    def _overapprox_diags(
        self, info: KernelAccessInfo, trimmed: DataflowSummary
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for flow in trimmed.steady_flows():
            if flow.overapprox <= 0:
                continue
            lo, hi = _envelope(flow.slack_ranges)
            diags.append(
                make_diagnostic(
                    "RP602",
                    f"bounding-range enumeration ships {flow.overapprox} "
                    f"slack bytes of {flow.array!r} to partition {flow.gpu} "
                    "per launch that the partition provably never reads",
                    kernel=info.kernel.name,
                    array=flow.array,
                    witness={
                        "partition": flow.gpu,
                        "lo": lo,
                        "hi": hi,
                        "bytes": flow.overapprox,
                        "launch": flow.launch,
                    },
                    pass_name=self.name,
                )
            )
        return diags

    # -- RP603 ---------------------------------------------------------------

    def _serialization_diags(
        self,
        info: KernelAccessInfo,
        launch: LaunchContext,
        enums: EnumeratorTable,
    ) -> List[Diagnostic]:
        """Envelope capping creating write->read edges the exact sets refute.

        The scheduler's :class:`~repro.sched.executor.DataflowLog` keys
        events by :func:`~repro.sched.graph.merge_event_ranges`-compressed
        intervals; past the run cap the ranges collapse to their envelope.
        Between two adjacent identical launches, a reader whose *capped*
        ranges overlap a writer's capped ranges waits on it even when the
        exact (uncapped) ranges are disjoint — a false serialization.
        """
        from repro.sched.graph import merge_event_ranges

        diags: List[Diagnostic] = []
        strategy = choose_strategy(info)
        parts = strategy.partitions(launch.grid, launch.n_gpus)
        arrays = {p.name: p for p in info.kernel.array_params}
        for array in sorted(set(info.reads) & set(info.writes)):
            renum = enums.get(info.kernel.name, array, "read")
            wenum = enums.get(info.kernel.name, array, "write")
            if renum is None or wenum is None:
                continue
            try:
                extents = concrete_extents(arrays[array], launch.scalars)
            except UnmodelledAccess:
                continue
            elem = arrays[array].dtype.size

            def byte_rngs(enum: Enumerator, part: Partition) -> List[Tuple[int, int]]:
                ranges, _ = enum.element_ranges(
                    part, launch.block, launch.grid, launch.scalars, extents
                )
                return [(lo * elem, hi * elem) for lo, hi in ranges]

            reads = [byte_rngs(renum, p) for p in parts]
            writes = [byte_rngs(wenum, p) for p in parts]
            capped_r = [merge_event_ranges(r) for r in reads]
            capped_w = [merge_event_ranges(w) for w in writes]
            for q in range(launch.n_gpus):
                if not reads[q]:
                    continue
                phantom: List[Tuple[int, int]] = []
                for p in range(launch.n_gpus):
                    if not writes[p]:
                        continue
                    if intersect_intervals(reads[q], writes[p]):
                        continue  # a true dependency; capping is harmless
                    phantom += intersect_intervals(capped_r[q], capped_w[p])
                phantom = normalize_intervals(phantom)
                if not phantom:
                    continue
                lo, hi = _envelope(phantom)
                diags.append(
                    make_diagnostic(
                        "RP603",
                        f"partition {q}'s capped read envelope of {array!r} "
                        "overlaps writes its exact ranges never touch; the "
                        "pipelined scheduler serializes independent "
                        f"launches over {total_bytes(phantom)} phantom bytes",
                        kernel=info.kernel.name,
                        array=array,
                        witness={
                            "partition": q,
                            "lo": lo,
                            "hi": hi,
                            "bytes": total_bytes(phantom),
                        },
                        pass_name=self.name,
                    )
                )
        return diags
