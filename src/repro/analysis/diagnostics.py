"""The shared diagnostic record emitted by every static-analysis pass.

A :class:`Diagnostic` is one finding: a stable code (see
:mod:`repro.analysis.codes`), a severity, the kernel (and usually array) it
is anchored to, a human-readable message, an optional machine-readable
witness, and a fix hint. Passes construct diagnostics through
:func:`make_diagnostic`, which fills title/severity/hint defaults from the
code registry so messages stay consistent across passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Severity", "Diagnostic", "make_diagnostic"]


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the integer value."""

    ADVICE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in renderers and CLI flags."""
        return self.name.lower()

    @staticmethod
    def from_label(label: str) -> "Severity":
        """Parse a lower-case severity name (``"error"``, ``"warning"``, ...)."""
        try:
            return Severity[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    title: str
    severity: Severity
    message: str
    kernel: str
    array: Optional[str] = None
    #: Machine-readable evidence (thread coordinates, cell index, ...).
    witness: Optional[Dict[str, Any]] = None
    hint: Optional[str] = None
    #: Name of the pass that produced the finding.
    pass_name: str = ""

    def location(self) -> str:
        """``kernel`` or ``kernel/array`` anchor string."""
        return f"{self.kernel}/{self.array}" if self.array else self.kernel

    def format(self) -> str:
        """One-line human-readable rendering (without the witness)."""
        return f"{self.severity.label:>7}  {self.code}  {self.location()}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the schema in ``docs/static-analysis.md``)."""
        return {
            "code": self.code,
            "title": self.title,
            "severity": self.severity.label,
            "kernel": self.kernel,
            "array": self.array,
            "message": self.message,
            "hint": self.hint,
            "witness": self.witness,
            "pass": self.pass_name,
        }


def make_diagnostic(
    code: str,
    message: str,
    *,
    kernel: str,
    array: Optional[str] = None,
    witness: Optional[Dict[str, Any]] = None,
    severity: Optional[Severity] = None,
    hint: Optional[str] = None,
    pass_name: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting metadata from the code registry."""
    from repro.analysis.codes import code_info

    info = code_info(code)
    return Diagnostic(
        code=code,
        title=info.title,
        severity=severity if severity is not None else info.severity,
        message=message,
        kernel=kernel,
        array=array,
        witness=witness,
        hint=hint if hint is not None else info.hint,
        pass_name=pass_name,
    )
