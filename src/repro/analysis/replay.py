"""Dynamic confirmation of static findings on the IR interpreter.

The race detector's witnesses are *static* claims ("these two threads write
the same cell"). This module replays the kernel on the vectorized numpy
interpreter with per-lane access tracing and checks that the claimed lanes
really touch the claimed cell — and, when the witness spans two different
thread blocks, replays the kernel a second time split into two partitions
(via the §7 partitioning transform) and checks that the cell is written by
both partition launches. Static finding, dynamic confirmation.

The module also hosts :func:`run_whole_vs_split`, the whole-grid versus
two-partition equivalence oracle the property-based tests use: for a kernel
the race detector certifies race-free, both executions must produce
bitwise-identical arrays.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.compiler.kernel_partition import partition_kernel
from repro.compiler.strategy import Partition, PartitionStrategy
from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import AccessTrace, eval_scalar_expr, run_kernel
from repro.cuda.ir.kernel import (
    ArrayParam,
    Kernel,
    PARTITION_FIELDS,
    ScalarParam,
    partition_field_name,
)
from repro.errors import ExecutionError

__all__ = [
    "lane_id",
    "make_replay_args",
    "confirm_witness",
    "run_whole_vs_split",
]


def lane_id(block_zyx, thread_zyx, grid: Dim3, block: Dim3) -> int:
    """The interpreter's flat lane index of one thread.

    Lane order matches :class:`repro.cuda.exec.interpreter._Lanes`: blocks in
    z,y,x-major order, then threads within the block in z,y,x-major order.
    """
    gz, gy, gx = grid.zyx()
    bz, by, bx = block.zyx()
    biz, biy, bix = (int(v) for v in block_zyx)
    tiz, tiy, tix = (int(v) for v in thread_zyx)
    block_lane = (biz * gy + biy) * gx + bix
    thread_lane = (tiz * by + tiy) * bx + tix
    return block_lane * (bz * by * bx) + thread_lane


def make_replay_args(kernel: Kernel, scalars: Mapping[str, int]) -> Dict[str, object]:
    """Launch arguments for a replay run: ones-filled arrays, given scalars.

    Array extents are evaluated from the declared shape expressions with the
    concrete scalar values; contents are all-ones (safe for the IR's math
    functions and value-independent for access tracing).
    """
    args: Dict[str, object] = {}
    for p in kernel.params:
        if isinstance(p, ArrayParam):
            shape = tuple(int(eval_scalar_expr(e, dict(scalars))) for e in p.shape)
            args[p.name] = np.ones(shape, dtype=p.dtype.to_numpy())
        elif isinstance(p, ScalarParam):
            if p.name in scalars:
                args[p.name] = scalars[p.name]
            elif p.dtype.is_float:
                args[p.name] = 1.0
            else:
                raise ExecutionError(
                    f"replay needs a concrete value for scalar {p.name!r}"
                )
    return args


def _partition_args(part: Partition) -> Dict[str, int]:
    return {
        partition_field_name("partition", f): v
        for f, v in zip(PARTITION_FIELDS, part.as_tuple())
    }


def confirm_witness(
    kernel: Kernel,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    witness: Dict[str, object],
    *,
    kind: str = "ww",
) -> Optional[bool]:
    """Replay a race witness; True/False on a verdict, None when undecidable.

    ``kind`` is ``"ww"`` (both threads write) or ``"rw"`` (thread A writes,
    thread B reads). The whole-grid replay checks lane-level evidence; for a
    confirmed write–write witness spanning two blocks, the kernel is
    additionally split into two partitions at the witness boundary and the
    cell must be written by both partition launches (recorded in the witness
    as ``"partition_replay"``).
    """
    array = str(witness["array"])
    cell = tuple(int(c) for c in witness["cell"])  # type: ignore[union-attr]
    try:
        args = make_replay_args(kernel, scalars)
        shape = args[array].shape  # type: ignore[union-attr]
        flat = int(np.ravel_multi_index(cell, shape))
        trace = AccessTrace(record_lanes=True)
        run_kernel(kernel, grid, block, args, trace=trace)
    except (ExecutionError, ValueError):
        return None
    thread_a = witness["thread_a"]
    thread_b = witness["thread_b"]
    lane_a = lane_id(thread_a["block"], thread_a["thread"], grid, block)  # type: ignore[index]
    lane_b = lane_id(thread_b["block"], thread_b["thread"], grid, block)  # type: ignore[index]
    writers = trace.writers.get(array, {}).get(flat, set())
    if kind == "rw":
        readers = trace.readers.get(array, {}).get(flat, set())
        return lane_a in writers and lane_b in readers
    confirmed = lane_a in writers and lane_b in writers
    if confirmed:
        witness["partition_replay"] = _confirm_with_partitions(
            kernel, grid, block, scalars, array, flat, thread_a, thread_b
        )
    return confirmed


def _confirm_with_partitions(
    kernel: Kernel,
    grid: Dim3,
    block: Dim3,
    scalars: Mapping[str, int],
    array: str,
    flat: int,
    thread_a,
    thread_b,
) -> Optional[bool]:
    """Split the grid between the witness blocks; both halves must hit the cell."""
    block_a = [int(v) for v in thread_a["block"]]
    block_b = [int(v) for v in thread_b["block"]]
    axis = None
    for i, name in enumerate(("z", "y", "x")):
        if block_a[i] != block_b[i]:
            axis, lo, hi = name, min(block_a[i], block_b[i]), max(block_a[i], block_b[i])
            break
    if axis is None:
        return None  # same block: a partition split cannot separate the threads
    whole = Partition.whole(grid)
    first = Partition(
        z=(0, hi) if axis == "z" else whole.z,
        y=(0, hi) if axis == "y" else whole.y,
        x=(0, hi) if axis == "x" else whole.x,
    )
    second = Partition(
        z=(hi, grid.z) if axis == "z" else whole.z,
        y=(hi, grid.y) if axis == "y" else whole.y,
        x=(hi, grid.x) if axis == "x" else whole.x,
    )
    try:
        pk = partition_kernel(kernel)
        hits = []
        for part in (first, second):
            args = make_replay_args(kernel, scalars)
            args.update(_partition_args(part))
            trace = AccessTrace()
            run_kernel(pk, part.grid(), block, args, trace=trace)
            hits.append(flat in trace.writes.get(array, set()))
        return hits[0] and hits[1]
    except (ExecutionError, ValueError):
        return None


def run_whole_vs_split(
    kernel: Kernel,
    grid: Dim3,
    block: Dim3,
    args: Mapping[str, object],
    *,
    axis: str = "x",
    n_parts: int = 2,
) -> bool:
    """Whole-grid vs. n-partition execution; True iff all arrays match bitwise.

    ``args`` is a template: arrays are copied before each execution so the
    caller's buffers are untouched. Race-free kernels must return True for
    every axis/partition count (the property-based tests rely on this).
    """

    def fresh() -> Dict[str, object]:
        return {
            k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in args.items()
        }

    whole = fresh()
    run_kernel(kernel, grid, block, whole, trace=None)

    split = fresh()
    pk = partition_kernel(kernel)
    for part in PartitionStrategy(axis=axis).partitions(grid, n_parts):
        if part.is_empty:
            continue
        launch_args = dict(split)
        launch_args.update(_partition_args(part))
        run_kernel(pk, part.grid(), block, launch_args, trace=None)

    for name, value in args.items():
        if isinstance(value, np.ndarray):
            if not np.array_equal(np.asarray(whole[name]), np.asarray(split[name])):
                return False
    return True
