"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``   compile a workload's kernel and print its application model
              (CUDA-like source, access maps, strategy, legality verdict).
``lint``      run the static-analysis passes (races, bounds,
              partitionability) over workloads and report diagnostics.
``run``       run a workload functionally on N simulated GPUs and check the
              result bitwise against the single-GPU reference.
``bench``     regenerate the paper's evaluation tables on the simulated
              K80 node (figure6 | figure7 | figure8 | table1 | overhead |
              schedules | cluster | redundancy | pipeline | serve).

``run`` and ``bench`` accept ``--schedule
{sequential,overlap,overlap+p2p,auto}`` to pick the launch-scheduler policy
(see docs/scheduler.md); ``bench schedules`` runs the three concrete
policies side by side. ``bench cluster --nodes N --gpus-per-node G`` runs
the multi-node scaling study (see docs/cluster.md) and self-checks 1-node
equivalence plus the exposure accounting identity. ``bench redundancy``
runs the shared-copy coherence study (see docs/coherence.md) and
self-checks the >=2x steady-state traffic reduction, bitwise equality, and
— with ``--nodes N`` above 1 — the inter-node byte reduction; ``run
--shared-copies`` enables the shared-copy trackers on a functional run.
``bench pipeline --window N --json PATH`` runs the cross-launch pipelining
study (fused launch windows, see docs/scheduler.md) and self-checks that
exposed transfer time never exceeds the window=1 run, that the widest
window clears the >=25% exposed-transfer reduction and >=1.1x speedup bars
against the per-launch sequential baseline, and that pipelining is bitwise
invisible; ``run --pipeline-window N`` fuses N launches per window on a
functional run.
``bench overhead`` pairs the paper's single-GPU slowdown table with the
staged-planner host-overhead study (docs/performance.md): per-launch host
microseconds by stage, cold vs warm vs ``plan_cache=False``, with exit-1
self-checks on the >=5x warm reduction, the plan-cache hit/miss
arithmetic, and bitwise plan-cache invisibility across the full
``schedule x shared_copies x pipeline_window x topology`` matrix.
``run --json`` and the serve/taskgraph benches surface the planner
counters (plan-cache hits/misses/evictions, vectorized vs interpreted
enumerator scans).
``machine``   show the calibrated machine model.

Exit codes: 0 success; 1 lint findings at/above the ``--fail-on`` threshold
or a result mismatch; every :class:`repro.errors.ReproError` subclass maps
to its own distinct code (see ``errors.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

import numpy as np

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi
from repro.errors import ReproError, exit_code_for
from repro.cuda.ir.printer import kernel_to_cuda
from repro.harness.calibration import GPU_COUNTS, K80_NODE_SPEC
from repro.harness.report import finish_self_checks, format_table, write_json_report
from repro.runtime.api import MultiGpuApi, host_planner_counters
from repro.runtime.config import RuntimeConfig
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS, functional_config
from repro.workloads.common import TABLE1

__all__ = ["main"]

#: Everything ``analyze``/``lint``/``run`` accept: the paper's Table 1 set
#: plus the extra study workloads (the bench tables stay Table-1-only).
RUNNABLE_WORKLOADS = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = RUNNABLE_WORKLOADS[args.workload](functional_config(args.workload, size=args.size))
    kernels = workload.build_kernels()
    app = compile_app(kernels, model_path=args.model_out)
    if args.verbose:
        from repro.compiler.report import describe_app

        print(describe_app(app, sources=True))
        if args.model_out:
            print(f"\napplication model written to {args.model_out}")
        return 0
    for kernel in kernels:
        ck = app.kernel(kernel.name)
        print(kernel_to_cuda(kernel))
        print(f"partitionable:    {ck.partitionable}")
        if not ck.partitionable:
            print(f"reject reason:    {ck.model.reject_reason}")
            continue
        print(f"strategy:         split along grid axis {ck.strategy.axis!r}")
        print(f"unit axes:        {ck.model.unit_axes or '(none)'}")
        print(f"runtime coverage: {ck.model.runtime_coverage}")
        for arg in ck.model.args:
            if arg.kind != "array":
                continue
            if arg.read:
                print(f"  read  {arg.name}: {arg.read.map_str}")
            if arg.write:
                print(f"  write {arg.name}: {arg.write.map_str}")
    if args.model_out:
        print(f"\napplication model written to {args.model_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintReport, Severity, lint_kernels, render_json, render_text

    names = args.workloads or sorted(ALL_WORKLOADS)
    unknown = [n for n in names if n not in RUNNABLE_WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    passes = None
    if args.dataflow:
        # The dataflow pass is opt-in (it models whole launch sequences);
        # --dataflow adds it to the default pass set.
        from repro.analysis import registered_passes

        passes = [
            name
            for name, cls in registered_passes().items()
            if cls.default or name == "dataflow"
        ]
    report = LintReport()
    for name in names:
        workload = RUNNABLE_WORKLOADS[name](functional_config(name, size=args.size))
        grid, block = workload.launch_config()
        report.extend(
            lint_kernels(
                workload.build_kernels(),
                grid=grid,
                block=block,
                replay=not args.no_replay,
                passes=passes,
                n_gpus=args.gpus,
                launches=args.launches,
                irredundant=args.irredundant,
            )
        )
    print(render_json(report) if args.format == "json" else render_text(report))
    fail_on = None if args.fail_on == "never" else Severity.from_label(args.fail_on)
    return 1 if report.failed(fail_on) else 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = RUNNABLE_WORKLOADS[args.workload](
        functional_config(args.workload, size=args.size, iterations=args.iterations)
    )
    inputs = workload.make_inputs(seed=args.seed)
    print(f"running {workload.cfg} on the single-GPU reference ...")
    reference = workload.run(CudaApi(), inputs)
    app = compile_app(workload.build_kernels())
    print(f"running on {args.gpus} simulated GPUs ({args.schedule} schedule) ...")
    cache_knobs = {}
    if args.plan_cache_capacity is not None:
        cache_knobs["plan_cache_capacity"] = args.plan_cache_capacity
    if args.residual_cache_capacity is not None:
        cache_knobs["residual_cache_capacity"] = args.residual_cache_capacity
    config = RuntimeConfig(
        n_gpus=args.gpus,
        schedule=args.schedule,
        shared_copies=args.shared_copies,
        pipeline_window=args.pipeline_window,
        irredundant_transfers=args.irredundant_transfers,
        **cache_knobs,
    )
    api = MultiGpuApi(app, config)
    result = workload.run(api, inputs)
    for key in reference:
        if not np.array_equal(reference[key], result[key]):
            print(f"MISMATCH in output {key!r}")
            return 1
    print("results bitwise equal to the single-GPU reference")
    print(
        f"coherence traffic: {api.stats.sync_bytes} bytes in "
        f"{api.stats.sync_transfers} transfers; "
        f"{api.stats.enumerator_calls} enumerator calls, "
        f"{api.stats.tracker_ops} tracker ops"
    )
    counters = host_planner_counters(api.stats)
    print(
        f"staged planner: {counters['plan_cache_hits']} plan-cache hits, "
        f"{counters['plan_cache_misses']} misses, "
        f"{counters['plan_cache_evictions']} evictions; "
        f"{counters['residual_cache_hits']} residual replays, "
        f"{counters['residual_cache_misses']} residual misses, "
        f"{counters['residual_cache_evictions']} evictions; enumerator scans "
        f"{counters['enumerator_specialized']} vectorized / "
        f"{counters['enumerator_fallback']} interpreted"
    )
    if args.shared_copies:
        print(
            f"shared copies: {api.stats.redundant_bytes_avoided} redundant "
            f"bytes avoided, {api.stats.tracker_share_ops} sharer registrations, "
            f"{api.stats.tracker_invalidate_ops} invalidations"
        )
    if args.irredundant_transfers:
        print(
            f"irredundant transfers: {api.stats.overapprox_bytes_avoided} "
            f"bounding-range slack bytes trimmed"
        )
    if args.json:
        import dataclasses

        payload = {
            "workload": args.workload,
            "config": {
                "n_gpus": args.gpus,
                "schedule": args.schedule,
                "shared_copies": args.shared_copies,
                "pipeline_window": args.pipeline_window,
                "irredundant_transfers": args.irredundant_transfers,
                "plan_cache_capacity": config.plan_cache_capacity,
                "residual_cache_capacity": config.residual_cache_capacity,
                "size": workload.cfg.size,
                "iterations": workload.cfg.iterations,
                "seed": args.seed,
            },
            "bitwise_equal": True,
            "stats": dataclasses.asdict(api.stats),
            "host_counters": counters,
        }
        write_json_report(
            args.json, f"benchmarks/results/run_{args.workload}.json", payload
        )
    return 0


def _check_cluster_one_node_equivalence(workloads, total, schedules) -> List[str]:
    """Functional check: a 1-node cluster must match the single-node path.

    Runs each workload bitwise on (a) the plain multi-GPU runtime and
    (b) a 1 x ``total`` cluster machine, under every schedule, and returns
    a list of human-readable failures (empty when equivalent).
    """
    from repro.cluster.engine import ClusterSimMachine
    from repro.harness.calibration import k80_cluster

    failures: List[str] = []
    for name in workloads:
        workload = ALL_WORKLOADS[name](functional_config(name))
        inputs = workload.make_inputs(seed=0)
        app = compile_app(workload.build_kernels())
        for schedule in schedules:
            cfg = RuntimeConfig(n_gpus=total, schedule=schedule)
            reference = workload.run(MultiGpuApi(app, cfg), inputs)
            machine = ClusterSimMachine(k80_cluster(1, total))
            got = workload.run(MultiGpuApi(app, cfg, machine=machine), inputs)
            for key in reference:
                if not np.array_equal(reference[key], got[key]):
                    failures.append(
                        f"1-node equivalence: {name} output {key!r} differs "
                        f"under schedule {schedule!r}"
                    )
    return failures


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    from repro.harness import experiments as ex
    from repro.harness.calibration import K80_CLUSTER_SPEC
    from repro.sched.policy import SCHEDULES

    nodes = args.nodes
    gpn = args.gpus_per_node or 4
    total = nodes * gpn
    workloads = tuple(args.workloads or ["hotspot"])
    size = args.sizes[0] if args.sizes else "medium"
    schedules = (args.schedule,) if args.schedule else tuple(SCHEDULES)
    # Hold total GPUs constant: the 1-node shape is the network-free
    # baseline the clustered shape is judged against.
    shapes = ((1, total), (nodes, gpn)) if nodes > 1 else ((1, total),)

    print(
        f"cluster bench: {nodes} node(s) x {gpn} GPU(s), "
        f"workloads {', '.join(workloads)}, schedules {', '.join(schedules)}"
    )
    points = ex.cluster_scaling(
        workloads=workloads, shapes=shapes, size=size, schedules=schedules
    )

    headers = [
        "Workload",
        "Shape",
        "Schedule",
        "Time [s]",
        "Speedup",
        "Intra exposed [s]",
        "Inter exposed [s]",
        "Inter copies",
    ]
    rows = [
        (
            p.workload,
            f"{p.n_nodes}x{p.gpus_per_node}",
            p.schedule,
            f"{p.time:.4f}",
            f"{p.speedup:.2f}",
            f"{p.intra_exposed:.5f}",
            f"{p.inter_exposed:.5f}",
            p.inter_node_transfers,
        )
        for p in points
    ]
    table = format_table(headers, rows, title=f"Cluster scaling ({size} problems)")
    print(table)
    for p in points:
        c = p.host_counters
        print(
            f"  planner {p.workload} {p.n_nodes}x{p.gpus_per_node} {p.schedule}: "
            f"plan cache {c.get('plan_cache_hits', 0)}h/"
            f"{c.get('plan_cache_misses', 0)}m, residual cache "
            f"{c.get('residual_cache_hits', 0)}h/"
            f"{c.get('residual_cache_misses', 0)}m, enumerator "
            f"{c.get('enumerator_specialized', 0)} vectorized / "
            f"{c.get('enumerator_fallback', 0)} interpreted"
        )

    failures = _check_cluster_one_node_equivalence(workloads, total, schedules)
    for p in points:
        tol = 1e-9 * max(1.0, p.transfers_busy)
        if p.exposure_identity_error > tol:
            failures.append(
                f"accounting identity: {p.workload} {p.n_nodes}x{p.gpus_per_node} "
                f"{p.schedule}: tier split drifts from busy_time(TRANSFERS) "
                f"by {p.exposure_identity_error:.3e}s"
            )
        if p.n_nodes == 1 and (p.inter_exposed > 0 or p.inter_node_transfers > 0):
            failures.append(
                f"1-node run reports inter-node traffic: {p.workload} "
                f"{p.schedule} ({p.inter_node_transfers} copies, "
                f"{p.inter_exposed:.3e}s exposed)"
            )
    baseline = {
        (p.workload, p.schedule): p.inter_exposed for p in points if p.n_nodes == 1
    }
    for p in points:
        if p.n_nodes == 1:
            continue
        ref = baseline.get((p.workload, p.schedule))
        if ref is not None and p.inter_exposed < ref:
            failures.append(
                f"sanity: {p.workload} {p.schedule}: {p.n_nodes}x{p.gpus_per_node} "
                f"reports less inter-node exposed time ({p.inter_exposed:.3e}s) "
                f"than 1x{total} ({ref:.3e}s)"
            )

    if args.json:
        payload = {
            "nodes": nodes,
            "gpus_per_node": gpn,
            "size": size,
            "points": [
                {
                    "workload": p.workload,
                    "shape": f"{p.n_nodes}x{p.gpus_per_node}",
                    "schedule": p.schedule,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "intra_hidden": p.intra_hidden,
                    "intra_exposed": p.intra_exposed,
                    "inter_hidden": p.inter_hidden,
                    "inter_exposed": p.inter_exposed,
                    "inter_node_transfers": p.inter_node_transfers,
                    "inter_node_bytes": p.inter_node_bytes,
                    "transfers_busy": p.transfers_busy,
                    "host_counters": p.host_counters,
                }
                for p in points
            ],
            "failures": failures,
        }
        write_json_report(args.json, "benchmarks/results/cluster_scaling.json", payload)

    return finish_self_checks(
        failures, "1-node equivalence, accounting identity, tier sanity"
    )


def _check_pipeline_equivalence(workloads, n_gpus, windows) -> List[str]:
    """Functional check: pipelining must be bitwise-invisible.

    Runs each workload under every (schedule, pipeline window, shared
    copies) combination and compares outputs bitwise against the
    per-launch (window=1) run of the same schedule.
    """
    from repro.sched.policy import SCHEDULES

    failures: List[str] = []
    for name in workloads:
        workload = ALL_WORKLOADS[name](functional_config(name))
        inputs = workload.make_inputs(seed=0)
        app = compile_app(workload.build_kernels())
        for schedule in list(SCHEDULES) + ["auto"]:
            for shared in (False, True):
                reference = None
                for window in sorted({1, *windows}):
                    cfg = RuntimeConfig(
                        n_gpus=n_gpus,
                        schedule=schedule,
                        shared_copies=shared,
                        pipeline_window=window,
                    )
                    got = workload.run(MultiGpuApi(app, cfg), inputs)
                    if reference is None:
                        reference = got
                        continue
                    for key in reference:
                        if not np.array_equal(reference[key], got[key]):
                            failures.append(
                                f"pipeline equivalence: {name} output {key!r} "
                                f"differs at window={window} under "
                                f"schedule={schedule!r} shared_copies={shared}"
                            )
    return failures


def _cmd_bench_pipeline(args: argparse.Namespace) -> int:
    from repro.harness import experiments as ex

    windows = tuple(sorted({1, 2, 4} | ({args.window} if args.window else set())))
    workloads = tuple(args.workloads or ["hotspot", "nbody"])
    size = args.sizes[0] if args.sizes else "medium"
    n_gpus = args.gpu_counts[0] if args.gpu_counts else 16
    # Default cluster shape matches the flat GPU count (2x8 = 16): the
    # interesting comparison holds total GPUs constant across topologies.
    nodes = args.nodes
    gpn = args.gpus_per_node if args.gpus_per_node else max(1, n_gpus // nodes)

    print(
        f"pipeline bench: windows {', '.join(map(str, windows))}, "
        f"workloads {', '.join(workloads)}, flat 1x{n_gpus} + cluster {nodes}x{gpn}"
    )
    points = ex.pipeline_study(
        workloads=workloads,
        windows=windows,
        n_gpus=n_gpus,
        cluster_shape=(nodes, gpn) if nodes > 1 else None,
        size=size,
    )

    headers = [
        "Workload",
        "Topology",
        "Schedule",
        "Window",
        "Time [s]",
        "Speedup",
        "Exposed [ms]",
        "Hidden",
        "Flushes",
        "Batch",
    ]
    rows = [
        (
            p.workload,
            f"{p.n_nodes}x{p.gpus_per_node}",
            p.schedule,
            p.pipeline_window,
            f"{p.time:.4f}",
            f"{p.speedup:.2f}",
            f"{p.exposed_transfer_time * 1e3:.3f}",
            f"{p.hidden_fraction:.1%}",
            p.pipeline_flushes,
            p.pipeline_max_batch,
        )
        for p in points
    ]
    print(format_table(headers, rows, title=f"Cross-launch pipelining ({size} problems)"))

    # Self-checks. Keyed per (workload, topology): the sequential window=1
    # row is the per-launch baseline; overlap+p2p rows carry the windows.
    failures: List[str] = []
    eps = 1e-9
    by_key = {}
    for p in points:
        by_key.setdefault((p.workload, p.topology), []).append(p)
    for (name, topo), group in by_key.items():
        seq = next(p for p in group if p.schedule == "sequential")
        p2p = {p.pipeline_window: p for p in group if p.schedule == "overlap+p2p"}
        w1 = p2p[1]
        for w, p in sorted(p2p.items()):
            if p.exposed_transfer_time > w1.exposed_transfer_time + eps:
                failures.append(
                    f"regression: {name} {topo} overlap+p2p window={w} exposes "
                    f"{p.exposed_transfer_time:.3e}s transfer time vs "
                    f"{w1.exposed_transfer_time:.3e}s at window=1"
                )
        wide = p2p[max(p2p)]
        if wide.exposed_transfer_time > 0.75 * seq.exposed_transfer_time + eps:
            failures.append(
                f"headline: {name} {topo} window={wide.pipeline_window} exposed "
                f"transfer time {wide.exposed_transfer_time:.3e}s is not >=25% "
                f"below the per-launch sequential baseline "
                f"{seq.exposed_transfer_time:.3e}s"
            )
        if wide.time * 1.1 > seq.time + eps:
            failures.append(
                f"headline: {name} {topo} window={wide.pipeline_window} "
                f"end-to-end {wide.time:.4f}s is not >=1.1x faster than the "
                f"per-launch sequential baseline {seq.time:.4f}s"
            )
    failures += _check_pipeline_equivalence(workloads, min(n_gpus, 4), windows)

    if args.json:
        payload = {
            "windows": list(windows),
            "size": size,
            "flat_gpus": n_gpus,
            "cluster_shape": f"{nodes}x{gpn}",
            "points": [
                {
                    "workload": p.workload,
                    "topology": p.topology,
                    "shape": f"{p.n_nodes}x{p.gpus_per_node}",
                    "schedule": p.schedule,
                    "pipeline_window": p.pipeline_window,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "hidden_transfer_time": p.hidden_transfer_time,
                    "exposed_transfer_time": p.exposed_transfer_time,
                    "pipeline_flushes": p.pipeline_flushes,
                    "pipeline_max_batch": p.pipeline_max_batch,
                    "estimate_cache_hits": p.estimate_cache_hits,
                    "estimate_cache_misses": p.estimate_cache_misses,
                }
                for p in points
            ],
            "failures": failures,
        }
        write_json_report(args.json, "benchmarks/results/pipeline.json", payload)

    return finish_self_checks(
        failures,
        "exposed transfer time never above window=1, "
        ">=25% exposed reduction and >=1.1x speedup vs sequential baseline, "
        "bitwise equality across schedule x window x shared-copies",
    )


def _stencil_linter_agreement(points, shapes, schedules, iterations, base) -> List[str]:
    """Cross-check the measured dstencil traffic against the RP6xx linter.

    The dataflow analyzer simulates the same launch sequence the runtime
    executes, so its per-flow byte classification must *equal* the runtime
    counters: total required bytes = measured sync bytes, total redundant
    bytes = measured ``redundant_bytes_avoided`` (shared-copies run), total
    over-approximated bytes = measured ``overapprox_bytes_avoided``
    (irredundant run) — per tier. Any disagreement is a bug in one of the
    two models and fails the bench.
    """
    from repro.analysis.dataflow import analyze_transfers
    from repro.compiler.access_analysis import analyze_kernel
    from repro.workloads.dstencil import BLOCK, build_dstencil_kernel

    from repro.cuda.dim3 import Dim3

    side = 64
    info = analyze_kernel(build_dstencil_kernel(side))
    blocks = -(-side // BLOCK.x)
    grid = Dim3(x=blocks, y=blocks)
    failures: List[str] = []
    by = {
        (p.kernel, p.n_nodes, p.schedule, p.shared_copies, p.irredundant): p
        for p in points
    }
    for n_nodes, gpus_per_node in shapes:
        total = n_nodes * gpus_per_node
        cluster = base.with_shape(n_nodes, gpus_per_node) if n_nodes > 1 else None
        for irr in (False, True):
            summary = analyze_transfers(
                info,
                n_gpus=total,
                launches=iterations,
                grid=grid,
                block=BLOCK,
                scalars={},
                irredundant=irr,
                cluster=cluster,
            )
            for sched in schedules:
                p = by[("dstencil", n_nodes, sched, True, irr)]
                pairs = [
                    ("required", summary.total("required"), p.total_sync_bytes),
                    ("redundant", summary.total("redundant"), p.redundant_bytes_avoided),
                    (
                        "redundant_inter",
                        summary.total("redundant_inter"),
                        p.redundant_bytes_avoided_inter,
                    ),
                    ("overapprox", summary.total("overapprox"), p.overapprox_bytes_avoided),
                    (
                        "overapprox_inter",
                        summary.total("overapprox_inter"),
                        p.overapprox_bytes_avoided_inter,
                    ),
                ]
                for what, linted, measured in pairs:
                    if linted != measured:
                        failures.append(
                            f"linter disagreement: dstencil {what} bytes — linter "
                            f"{linted}, runtime {measured} ({n_nodes} node(s), "
                            f"{sched}, irredundant={irr})"
                        )
    return failures


def _cmd_bench_redundancy(args: argparse.Namespace) -> int:
    from repro.harness import experiments as ex
    from repro.harness.calibration import K80_CLUSTER_SPEC

    nodes = args.nodes
    gpn = args.gpus_per_node or 4
    shapes = ((1, nodes * gpn), (nodes, gpn)) if nodes > 1 else ((1, gpn),)
    schedules = (args.schedule,) if args.schedule else ("sequential", "overlap")
    iterations = 8
    print(
        f"redundancy bench: shapes {', '.join(f'{n}x{g}' for n, g in shapes)}, "
        f"schedules {', '.join(schedules)}, shared copies off vs on, "
        f"irredundant transfers off vs on"
    )
    points = ex.redundancy_study(
        iterations=iterations,
        shapes=shapes,
        schedules=schedules,
        irredundant=(False, True),
        stencil=True,
    )

    rows = [
        (
            p.kernel,
            f"{p.n_nodes}x{p.gpus_per_node}",
            p.schedule,
            "on" if p.shared_copies else "off",
            "on" if p.irredundant else "off",
            p.steady_bytes,
            p.total_sync_bytes,
            p.redundant_bytes_avoided,
            p.overapprox_bytes_avoided,
            p.inter_node_bytes,
        )
        for p in points
    ]
    print(
        format_table(
            [
                "Kernel",
                "Shape",
                "Schedule",
                "Shared",
                "Irred",
                "Steady [B]",
                "Total sync [B]",
                "Avoided [B]",
                "Trimmed [B]",
                "Inter-node [B]",
            ],
            rows,
            title="Redundant transfers: sole-owner vs shared-copy trackers",
        )
    )

    failures: List[str] = []
    by = {
        (p.kernel, p.n_nodes, p.schedule, p.shared_copies): p
        for p in points
        if not p.irredundant
    }
    for n_nodes, _ in shapes:
        for sched in schedules:
            off = by[("broadcast", n_nodes, sched, False)]
            on = by[("broadcast", n_nodes, sched, True)]
            if on.checksum != off.checksum:
                failures.append(
                    f"bitwise: broadcast output differs with shared copies "
                    f"({n_nodes} node(s), {sched})"
                )
            if off.steady_bytes == 0 or on.steady_bytes * 2 > off.steady_bytes:
                failures.append(
                    f"reduction: broadcast steady-state {off.steady_bytes} -> "
                    f"{on.steady_bytes} bytes misses the 2x bar "
                    f"({n_nodes} node(s), {sched})"
                )
            if n_nodes > 1 and on.inter_node_bytes >= off.inter_node_bytes:
                failures.append(
                    f"cluster: inter-node bytes did not drop "
                    f"({off.inter_node_bytes} -> {on.inter_node_bytes}, {sched})"
                )
            a_off = by[("aligned", n_nodes, sched, False)]
            a_on = by[("aligned", n_nodes, sched, True)]
            if a_on.checksum != a_off.checksum:
                failures.append(
                    f"bitwise: aligned output differs with shared copies "
                    f"({n_nodes} node(s), {sched})"
                )
            if a_on.total_sync_bytes > a_off.total_sync_bytes:
                failures.append(
                    f"regression: aligned traffic grew "
                    f"{a_off.total_sync_bytes} -> {a_on.total_sync_bytes} "
                    f"({n_nodes} node(s), {sched})"
                )

    # The stencil acceptance bar: trimming bounding-range slack strictly
    # reduces transferred bytes on top of the shared-copies baseline —
    # including the inter-node halo tier — and stays bitwise invisible.
    by_irr = {
        (p.kernel, p.n_nodes, p.schedule, p.shared_copies, p.irredundant): p
        for p in points
    }
    for n_nodes, _ in shapes:
        for sched in schedules:
            base_pt = by_irr[("dstencil", n_nodes, sched, True, False)]
            irr_pt = by_irr[("dstencil", n_nodes, sched, True, True)]
            if irr_pt.checksum != base_pt.checksum:
                failures.append(
                    f"bitwise: dstencil output differs with irredundant "
                    f"transfers ({n_nodes} node(s), {sched})"
                )
            if irr_pt.total_sync_bytes >= base_pt.total_sync_bytes:
                failures.append(
                    f"reduction: dstencil irredundant transfers did not cut "
                    f"traffic ({base_pt.total_sync_bytes} -> "
                    f"{irr_pt.total_sync_bytes}, {n_nodes} node(s), {sched})"
                )
            if irr_pt.overapprox_bytes_avoided == 0:
                failures.append(
                    f"trim: dstencil trimmed no slack bytes "
                    f"({n_nodes} node(s), {sched})"
                )
            if n_nodes > 1 and irr_pt.inter_node_bytes >= base_pt.inter_node_bytes:
                failures.append(
                    f"cluster: dstencil inter-node bytes did not drop with "
                    f"irredundant transfers ({base_pt.inter_node_bytes} -> "
                    f"{irr_pt.inter_node_bytes}, {sched})"
                )

    failures.extend(
        _stencil_linter_agreement(points, shapes, schedules, iterations, K80_CLUSTER_SPEC)
    )

    if args.json:
        payload = [
            {
                "kernel": p.kernel,
                "shared_copies": p.shared_copies,
                "irredundant": p.irredundant,
                "schedule": p.schedule,
                "n_nodes": p.n_nodes,
                "gpus_per_node": p.gpus_per_node,
                "steady_bytes": p.steady_bytes,
                "total_sync_bytes": p.total_sync_bytes,
                "redundant_bytes_avoided": p.redundant_bytes_avoided,
                "redundant_bytes_avoided_inter": p.redundant_bytes_avoided_inter,
                "overapprox_bytes_avoided": p.overapprox_bytes_avoided,
                "overapprox_bytes_avoided_inter": p.overapprox_bytes_avoided_inter,
                "inter_node_bytes": p.inter_node_bytes,
                "checksum": p.checksum,
            }
            for p in points
        ]
        write_json_report(
            args.json, "benchmarks/results/redundant_transfers.json", payload
        )

    return finish_self_checks(
        failures,
        ">=2x steady-state reduction, bitwise equality, no "
        "regression, irredundant stencil reduction, linter agreement",
    )


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Multi-tenant serving saturation study with exit-1 self-checks."""
    from repro.serve.bench import (
        saturation_failures,
        saturation_study,
        shared_skeleton_identity_failures,
        single_tenant_identity_failures,
    )

    tenants = args.tenants
    loads = tuple(args.load) if args.load else (0.25, 0.5, 1.0, 2.0, 4.0)
    nodes = args.nodes
    gpn = args.gpus_per_node if args.gpus_per_node else 2
    points = saturation_study(
        tenants=tenants,
        loads=loads,
        jobs=args.jobs,
        n_nodes=nodes,
        gpus_per_node=gpn,
        queue_capacity=args.queue_capacity,
    )
    print(
        format_table(
            [
                "Load",
                "Offered/s",
                "Submitted",
                "Done",
                "Shed",
                "Jobs/s",
                "p50 ms",
                "p99 ms",
            ],
            [
                [
                    f"{p.load:g}",
                    f"{p.offered_rate:.0f}",
                    p.submitted,
                    p.completed,
                    p.shed,
                    f"{p.throughput:.0f}",
                    f"{p.p50_delay * 1e3:.3f}",
                    f"{p.p99_delay * 1e3:.3f}",
                ]
                for p in points
            ],
            title=(
                f"Serve saturation — {tenants} tenants on {nodes}x{gpn} "
                f"(queue capacity {points[0].queue_capacity}, "
                f"service {points[0].service_time * 1e3:.3f} ms/job)"
            ),
        )
    )

    top = max(points, key=lambda p: p.load)
    if top.host_counters:
        print(
            f"  staged planner at load {top.load:g}: "
            f"{top.host_counters['plan_cache_hits']} plan-cache hits, "
            f"{top.host_counters['plan_cache_misses']} misses, "
            f"{top.host_counters['enumerator_specialized']} vectorized / "
            f"{top.host_counters['enumerator_fallback']} interpreted scans"
        )

    failures = saturation_failures(points)
    # The serve path must be indistinguishable from the direct api path for
    # a lone tenant — checked across pipelining and the overlap schedule.
    for window in (1, 4):
        failures += single_tenant_identity_failures(
            n_nodes=nodes, gpus_per_node=gpn, pipeline_window=window
        )
    failures += single_tenant_identity_failures(
        n_nodes=nodes, gpus_per_node=gpn, schedule="overlap", shared_copies=True
    )
    # Sharing one skeleton cache across tenants must be bitwise invisible
    # (only the planner counters may — and must — move).
    failures += shared_skeleton_identity_failures(n_gpus=gpn)

    if args.json:
        payload = {
            "tenants": tenants,
            "shape": f"{nodes}x{gpn}",
            "jobs": args.jobs,
            "queue_capacity": points[0].queue_capacity,
            "service_time": points[0].service_time,
            "points": [
                {
                    "load": p.load,
                    "offered_rate": p.offered_rate,
                    "submitted": p.submitted,
                    "completed": p.completed,
                    "shed": p.shed,
                    "wall": p.wall,
                    "throughput": p.throughput,
                    "p50_delay": p.p50_delay,
                    "p99_delay": p.p99_delay,
                    "per_tenant_completed": p.per_tenant_completed,
                    "host_counters": p.host_counters,
                }
                for p in points
            ],
            "failures": failures,
        }
        write_json_report(
            args.json, "benchmarks/results/serve_saturation.json", payload
        )

    return finish_self_checks(
        failures,
        "graceful saturation (throughput plateau, bounded p99, backpressure "
        "only under overload, fair shares), single-tenant serve identity "
        "(bitwise, trace, clock, stats), shared-skeleton-cache identity",
    )


def _cmd_bench_taskgraph(args: argparse.Namespace) -> int:
    from repro.tasks.bench import MIN_MAKESPAN_WIN, taskgraph_study

    workloads = [args.workload] if args.workload else None
    study = taskgraph_study(workloads=workloads, n_gpus=args.gpus)

    print(
        f"taskgraph bench: workloads {', '.join(study.workloads)}, "
        f"{study.n_gpus} simulated GPUs, "
        f"{len(study.identity)} identity configurations"
    )
    headers = ["Workload", "Mode", "GPUs", "Tasks", "Edges", "Time [ms]", "Win"]
    by_wl: Dict[str, Dict[str, Any]] = {}
    for p in study.points:
        by_wl.setdefault(p.workload, {})[p.mode] = p
    rows = []
    for name, modes in by_wl.items():
        ser = modes["serialized"]
        for p in (ser, modes["graph"]):
            rows.append(
                (
                    p.workload,
                    p.mode,
                    p.n_gpus,
                    p.tasks,
                    p.edges,
                    f"{p.time * 1e3:.3f}",
                    f"{ser.time / p.time:.2f}x",
                )
            )
    print(format_table(headers, rows, title="Dynamic task graph vs serialized"))

    headers = ["Workload", "Tasks", "Edges", "Waves", "Ready peak", "Opaque", "Syncs"]
    rows = [
        (
            name,
            s["tasks"],
            s["edges"],
            s["waves"],
            s["ready_peak"],
            s["nonaffine_tasks"],
            s["whole_buffer_syncs"],
        )
        for name, s in study.graph_stats.items()
    ]
    print(format_table(headers, rows, title="Graph structure (identity sweep)"))
    for name, counters in sorted(study.host_counters.items()):
        print(
            f"  {name}: staged planner (graph mode): "
            f"{counters['plan_cache_hits']} plan-cache hits, "
            f"{counters['plan_cache_misses']} misses, "
            f"{counters['enumerator_specialized']} vectorized / "
            f"{counters['enumerator_fallback']} interpreted scans"
        )
    for name, codes in sorted(study.diagnostics.items()):
        shown = ", ".join(codes) if codes else "none"
        print(f"  {name}: footprint diagnostics: {shown}")
    if study.cholesky_max_err is not None:
        print(
            "  cholesky: max abs deviation from numpy.linalg.cholesky "
            f"{study.cholesky_max_err:.3e}"
        )

    if args.json:
        write_json_report(
            args.json, "benchmarks/results/taskgraph.json", study.as_dict()
        )

    return finish_self_checks(
        study.failures,
        "bitwise identity graph/serialized/permuted across schedule x "
        "shared-copies x window, "
        f">={MIN_MAKESPAN_WIN}x makespan win with conserved transfer busy "
        "time, numerics vs numpy, opaque-task degradation",
    )


def _cmd_bench_overhead(args: argparse.Namespace) -> int:
    """Host launch-overhead study: staged-planner cost, cold vs warm."""
    from repro.harness import experiments as ex
    from repro.harness.overhead import (
        MIN_NOCACHE_REDUCTION,
        MIN_REPLAY_REDUCTION,
        MIN_WARM_REDUCTION,
        identity_sweep,
        launch_overhead_study,
        mutation_identity_failures,
        overhead_failures,
    )
    from repro.runtime.profiler import STAGES

    # The paper's §9.2 table first: simulated single-GPU slowdown of the
    # partitioned binary against the reference.
    rows = ex.single_gpu_overhead(sizes=tuple(args.sizes))
    print(
        format_table(
            ["Configuration", "Slowdown"],
            [(str(cfg), f"{frac:.4%}") for cfg, frac in rows],
            title="Single-GPU slowdown",
        )
    )

    from repro.harness.overhead import OVERHEAD_WORKLOADS

    names = args.workloads or None
    if names:
        unknown = [n for n in names if n not in OVERHEAD_WORKLOADS]
        if unknown:
            print(
                f"error: overhead study has no workload(s): {', '.join(unknown)} "
                f"(choose from {', '.join(OVERHEAD_WORKLOADS)})",
                file=sys.stderr,
            )
            return 2
    points = launch_overhead_study(workloads=names)
    headers = ["Workload", "Path", "Launches", *STAGES, "Total [us]"]
    table_rows = []
    for p in points:
        steady = p.warm_launches + p.replay_launches
        for label, launches, us in (
            ("cold", p.cold_launches, p.cold_us),
            ("warm", p.warm_launches, p.warm_us),
            ("replay", p.replay_launches, p.replay_us),
            ("no-cache", p.cold_launches + steady, p.nocache_us),
        ):
            if not us:
                continue  # a workload may never reach the replay path
            table_rows.append(
                (
                    p.workload,
                    label,
                    launches,
                    *(f"{us.get(stage, 0.0):.1f}" for stage in STAGES),
                    f"{us['total']:.1f}",
                )
            )
    print(
        format_table(
            headers,
            table_rows,
            title="Host overhead per launch [us] (staged planner, machine-less)",
        )
    )
    for p in points:
        replay = (
            f"{p.replay_residual_reduction:.2f}x residual replay win"
            if p.replay_residual_reduction is not None
            else "no replay hits"
        )
        print(
            f"  {p.workload}: warm path {p.warm_reduction:.1f}x below cold, "
            f"{p.nocache_reduction:.2f}x below the uncached steady "
            f"state, {replay}; counters {p.counters}"
        )

    failures = overhead_failures(points)
    failures += identity_sweep()
    failures += mutation_identity_failures()

    if args.json:
        payload = {
            "min_warm_reduction": MIN_WARM_REDUCTION,
            "min_nocache_reduction": MIN_NOCACHE_REDUCTION,
            "min_replay_reduction": MIN_REPLAY_REDUCTION,
            "slowdown": [
                {"config": str(cfg), "slowdown": frac} for cfg, frac in rows
            ],
            "points": [p.as_dict() for p in points],
            "failures": failures,
        }
        write_json_report(args.json, "benchmarks/results/launch_overhead.json", payload)

    return finish_self_checks(
        failures,
        f">={MIN_WARM_REDUCTION:g}x warm-path reduction, "
        f">={MIN_REPLAY_REDUCTION:g}x replay residual reduction, cache "
        "arithmetic for both caches, vectorized backend engaged, plan and "
        "residual caches bitwise/trace/tracker/stats invisible across "
        "schedule x shared-copies x window x topology, digest misses under "
        "adversarial memcpy/memset/free interleavings",
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import experiments as ex

    if args.experiment == "overhead":
        return _cmd_bench_overhead(args)
    if args.experiment == "cluster":
        return _cmd_bench_cluster(args)
    if args.experiment == "redundancy":
        return _cmd_bench_redundancy(args)
    if args.experiment == "pipeline":
        return _cmd_bench_pipeline(args)
    if args.experiment == "serve":
        return _cmd_bench_serve(args)
    if args.experiment == "taskgraph":
        return _cmd_bench_taskgraph(args)
    if args.experiment == "table1":
        print(
            format_table(
                ["Benchmark", "Small", "Medium", "Large", "Iterations"],
                ex.table1_rows(),
                title="Table 1",
            )
        )
        return 0
    counts = tuple(args.gpu_counts) if args.gpu_counts else GPU_COUNTS
    if args.experiment == "schedules":
        pts = ex.schedule_comparison(
            workloads=tuple(args.workloads or ["hotspot"]),
            gpu_counts=counts if args.gpu_counts else (1, 4, 16),
            size=args.sizes[0] if args.sizes else "medium",
        )
        headers = ["Workload", "GPUs", "Schedule", "Time [s]", "Speedup", "Hidden"]
        rows = [
            (p.workload, p.n_gpus, p.schedule, f"{p.time:.4f}", f"{p.speedup:.2f}", f"{p.hidden_fraction:.1%}")
            for p in pts
        ]
        if args.json:
            import json

            json_path = (
                args.json
                if isinstance(args.json, str)
                else "benchmarks/results/schedule_comparison.json"
            )
            payload = [
                {
                    "workload": p.workload,
                    "size": p.size_label,
                    "n_gpus": p.n_gpus,
                    "schedule": p.schedule,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "hidden_transfer_time": p.hidden_transfer_time,
                    "exposed_transfer_time": p.exposed_transfer_time,
                }
                for p in pts
            ]
            with open(json_path, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"wrote {json_path}")
        print(format_table(headers, rows, title="Schedule comparison"))
        return 0
    if args.experiment == "figure6":
        pts = ex.figure6(gpu_counts=counts, sizes=tuple(args.sizes), schedule=args.schedule)
        rows = [(p.workload, p.size_label, p.n_gpus, f"{p.time:.3f}", f"{p.speedup:.2f}") for p in pts]
        headers = ["Workload", "Size", "GPUs", "Time [s]", "Speedup"]
        if args.csv:
            from repro.harness.report import to_csv

            with open(args.csv, "w") as fh:
                fh.write(to_csv(headers, rows))
            print(f"wrote {args.csv}")
        print(format_table(headers, rows, title="Figure 6"))
    elif args.experiment == "figure7":
        rows = ex.figure7(gpu_counts=counts, schedule=args.schedule)
        print(
            format_table(
                ["Workload", "GPUs", "Application", "Transfers", "Patterns"],
                [
                    (r.workload, r.n_gpus, f"{r.t_application:.3f}", f"{r.t_transfers:.3f}", f"{r.t_patterns:.4f}")
                    for r in rows
                ],
                title="Figure 7 (medium problems)",
            )
        )
    elif args.experiment == "figure8":
        stats = ex.figure8(gpu_counts=counts, sizes=tuple(args.sizes))
        print(
            format_table(
                ["GPUs", "p25", "median", "p75", "max"],
                [
                    (s.n_gpus, f"{s.percentile(0.25):.4%}", f"{s.median:.4%}", f"{s.percentile(0.75):.4%}", f"{max(s.fractions):.4%}")
                    for s in stats
                ],
                title="Figure 8",
            )
        )
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.experiment)
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    spec = K80_NODE_SPEC
    rows = [(name, getattr(spec, name)) for name in (
        "n_gpus",
        "flops_per_gpu",
        "mem_bw_per_gpu",
        "pcie_bw",
        "host_bus_bw",
        "pcie_latency",
        "staging_latency",
        "p2p_enabled",
        "staging_factor",
        "cache_reuse_factor",
        "issue_overhead",
        "enumerator_call_cost",
        "per_range_cost",
        "tracker_op_cost",
        "partition_setup_cost",
        "sync_overhead",
    )]
    print(format_table(["Parameter", "Value"], rows, title="Calibrated machine model (K80 node)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automated partitioning of data-parallel kernels (ICPP 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="print a workload's polyhedral application model")
    p.add_argument("workload", choices=sorted(RUNNABLE_WORKLOADS))
    p.add_argument("--size", type=int, default=None, help="problem size (default: small functional)")
    p.add_argument("--model-out", default=None, help="write the JSON model here")
    p.add_argument(
        "--verbose", action="store_true", help="full report incl. generated enumerator sources"
    )
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("lint", help="static-analysis diagnostics for workload kernels")
    p.add_argument(
        "workloads",
        nargs="*",
        metavar="workload",
        help=f"workloads to lint (default: all of {', '.join(sorted(ALL_WORKLOADS))})",
    )
    p.add_argument("--size", type=int, default=None, help="problem size (default: small functional)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "advice", "never"],
        default="error",
        help="lowest severity that makes the exit status nonzero (default: error)",
    )
    p.add_argument(
        "--no-replay",
        action="store_true",
        help="skip interpreter replay confirmation of race witnesses",
    )
    p.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the cross-launch dataflow pass (RP6xx transfer lints)",
    )
    p.add_argument(
        "--irredundant",
        action="store_true",
        help="dataflow pass: model the irredundant-transfer remedy and "
        "report only the waste that remains after it",
    )
    p.add_argument(
        "--gpus",
        type=int,
        default=4,
        help="dataflow pass: device count to partition for (default 4)",
    )
    p.add_argument(
        "--launches",
        type=int,
        default=2,
        help="dataflow pass: back-to-back launches to model (default 2)",
    )
    p.set_defaults(fn=_cmd_lint)

    from repro.sched.policy import SCHEDULES

    p = sub.add_parser("run", help="functional multi-GPU run with bitwise check")
    p.add_argument("workload", choices=sorted(RUNNABLE_WORKLOADS))
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--size", type=int, default=None)
    p.add_argument("--iterations", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--schedule",
        choices=list(SCHEDULES) + ["auto"],
        default="sequential",
        help="launch-scheduler policy (default: sequential, the paper's Figure 4)",
    )
    p.add_argument(
        "--shared-copies",
        action="store_true",
        help="enable shared-copy (owner + sharers) coherence tracking",
    )
    p.add_argument(
        "--pipeline-window",
        type=int,
        default=1,
        help="fuse this many consecutive launches into one scheduling "
        "window (default 1: per-launch orchestration)",
    )
    p.add_argument(
        "--irredundant-transfers",
        action="store_true",
        help="trim bounding-range slack off synchronization copies using "
        "the exact per-partition read sets (RP602 remedy)",
    )
    p.add_argument(
        "--plan-cache-capacity",
        type=int,
        default=None,
        metavar="N",
        help="LRU capacity of the plan-skeleton cache (default 512; the "
        "cache itself cannot be disabled from the CLI)",
    )
    p.add_argument(
        "--residual-cache-capacity",
        type=int,
        default=None,
        metavar="N",
        help="LRU capacity of the residual replay cache (default 512)",
    )
    p.add_argument(
        "--json",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="write the run's stats (including the staged-planner counters) "
        "as JSON; bare flag uses a default path under benchmarks/results/",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("bench", help="regenerate a paper table/figure (simulated)")
    p.add_argument(
        "experiment",
        choices=[
            "figure6",
            "figure7",
            "figure8",
            "table1",
            "overhead",
            "schedules",
            "cluster",
            "redundancy",
            "pipeline",
            "serve",
            "taskgraph",
        ],
    )
    p.add_argument("--gpu-counts", type=int, nargs="*", default=None)
    p.add_argument("--sizes", nargs="*", default=["small", "medium", "large"])
    p.add_argument("--csv", default=None, help="also write the rows as CSV (figure6)")
    p.add_argument(
        "--schedule",
        choices=list(SCHEDULES) + ["auto"],
        default=None,
        help="launch-scheduler policy for figure6/figure7/cluster "
        "(default: sequential; cluster runs all three)",
    )
    p.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workloads for the schedules/cluster experiments",
    )
    p.add_argument(
        "--json",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="also write the rows as JSON (schedules/cluster); bare flag "
        "uses a default path under benchmarks/results/",
    )
    p.add_argument(
        "--nodes", type=int, default=2, help="cluster/pipeline experiment: node count"
    )
    p.add_argument(
        "--gpus-per-node",
        type=int,
        default=None,
        help="cluster/pipeline experiment: GPUs per node (default: 4 for "
        "cluster/redundancy; flat-GPU-count/nodes for pipeline)",
    )
    p.add_argument(
        "--window",
        type=int,
        default=None,
        help="pipeline experiment: additional pipeline window to measure "
        "(1, 2 and 4 always run)",
    )
    p.add_argument(
        "--workload",
        choices=["cholesky", "imgpipe"],
        default=None,
        help="taskgraph experiment: run a single workload (default: both)",
    )
    p.add_argument(
        "--gpus",
        type=int,
        default=16,
        help="taskgraph experiment: simulated GPU count for the overlap study",
    )
    p.add_argument(
        "--tenants", type=int, default=4, help="serve experiment: tenant count"
    )
    p.add_argument(
        "--load",
        type=float,
        nargs="*",
        default=None,
        metavar="L",
        help="serve experiment: offered loads as multiples of measured "
        "capacity (default: 0.25 0.5 1 2 4)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=48,
        help="serve experiment: jobs offered per load point",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        help="serve experiment: per-tenant admission-control queue bound",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("machine", help="show the calibrated machine model")
    p.set_defaults(fn=_cmd_machine)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; map ``ReproError`` to its exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
