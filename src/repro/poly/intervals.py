"""Half-open integer interval algebra and MAIRS atomic decomposition.

The runtime's enumerators flatten every partition's access set to sorted
half-open ``(lo, hi)`` byte ranges.  This module is the shared algebra over
those flat ranges: union/intersection/difference plus the *atomic
decomposition* of a family of per-reader range lists into Maximal Atomic
irRedundant Sets ("MAIRS: a Usage-based Dataflow Partitioning Algorithm" —
see PAPERS.md).  An atom is a maximal interval whose byte positions all have
the identical reader set; atoms are pairwise disjoint, and their union is
exactly the union of all the input range lists.  The dataflow analyzer
(:mod:`repro.analysis.dataflow`) classifies transfer bytes atom by atom, and
the schedule builder reuses the same subtraction when deriving cross-launch
edges.

All intervals are half-open ``lo <= x < hi`` with ``lo < hi``; empty and
inverted inputs are dropped during normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "normalize_intervals",
    "union_intervals",
    "intersect_intervals",
    "subtract_intervals",
    "total_bytes",
    "Atom",
    "atomic_decomposition",
]

Interval = Tuple[int, int]


def normalize_intervals(ranges: Iterable[Interval]) -> List[Interval]:
    """Sorted, disjoint, non-adjacent form: merges overlap and abutment."""
    out: List[Interval] = []
    for lo, hi in sorted((int(lo), int(hi)) for lo, hi in ranges):
        if hi <= lo:
            continue
        if out and lo <= out[-1][1]:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def union_intervals(a: Iterable[Interval], b: Iterable[Interval]) -> List[Interval]:
    """Normalized union of two interval lists."""
    return normalize_intervals(list(a) + list(b))


def intersect_intervals(a: Iterable[Interval], b: Iterable[Interval]) -> List[Interval]:
    """Pairwise intersection of two normalized-or-not range lists."""
    xs, ys = normalize_intervals(a), normalize_intervals(b)
    out: List[Interval] = []
    i = j = 0
    while i < len(xs) and j < len(ys):
        lo = max(xs[i][0], ys[j][0])
        hi = min(xs[i][1], ys[j][1])
        if lo < hi:
            out.append((lo, hi))
        if xs[i][1] <= ys[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract_intervals(a: Iterable[Interval], b: Iterable[Interval]) -> List[Interval]:
    """``a`` minus ``b``, both arbitrary range lists."""
    xs, ys = normalize_intervals(a), normalize_intervals(b)
    out: List[Interval] = []
    j = 0
    for lo, hi in xs:
        cur = lo
        while j < len(ys) and ys[j][1] <= cur:
            j += 1
        k = j
        while k < len(ys) and ys[k][0] < hi:
            blo, bhi = ys[k]
            if blo > cur:
                out.append((cur, blo))
            cur = max(cur, bhi)
            if cur >= hi:
                break
            k += 1
        if cur < hi:
            out.append((cur, hi))
    return out


def total_bytes(ranges: Iterable[Interval]) -> int:
    """Total measure of a range list (after normalization)."""
    return sum(hi - lo for lo, hi in normalize_intervals(ranges))


@dataclass(frozen=True)
class Atom:
    """One maximal atomic irredundant set: a run with a fixed reader set."""

    lo: int
    hi: int
    readers: FrozenSet[int]

    @property
    def nbytes(self) -> int:
        return self.hi - self.lo

    @property
    def multiplicity(self) -> int:
        return len(self.readers)


def atomic_decomposition(read_sets: Mapping[int, Sequence[Interval]]) -> List[Atom]:
    """Partition the union of per-reader range lists into MAIRS atoms.

    ``read_sets`` maps a reader id (a device, a partition index) to its flat
    ranges.  The result is the coarsest partition of the union such that
    every atom's bytes are read by exactly ``atom.readers`` — the atomic
    communication sets of the MAIRS algorithm, computed here by a boundary
    sweep over the (already interval-flattened) relations.
    """
    normalized: Dict[int, List[Interval]] = {
        reader: normalize_intervals(ranges) for reader, ranges in read_sets.items()
    }
    boundaries = sorted(
        {b for ranges in normalized.values() for lo, hi in ranges for b in (lo, hi)}
    )
    atoms: List[Atom] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        readers = frozenset(
            reader
            for reader, ranges in normalized.items()
            if any(rlo <= lo and hi <= rhi for rlo, rhi in ranges)
        )
        if not readers:
            continue
        if atoms and atoms[-1].hi == lo and atoms[-1].readers == readers:
            atoms[-1] = Atom(atoms[-1].lo, hi, readers)  # maximality: fuse runs
        else:
            atoms.append(Atom(lo, hi, readers))
    return atoms
