"""AST nodes for polyhedral code generation (isl-style).

The paper (Section 6) uses isl's AST generation: control flow is limited to
``for`` loops and conditionals, and expressions are closed-form trees whose
operators map 1:1 onto LLVM IR. Here the same AST maps 1:1 onto Python
source; :mod:`repro.poly.codegen` renders and compiles it, and
:func:`eval_expr` / :func:`interpret` provide the interpreted fallback used
by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.poly.linalg import ceildiv, floordiv

__all__ = [
    "Expr",
    "EConst",
    "EVar",
    "EAdd",
    "EMul",
    "EFDiv",
    "ECDiv",
    "EMin",
    "EMax",
    "Node",
    "AFor",
    "AGuard",
    "AEmitRange",
    "ASeq",
    "eval_expr",
    "interpret",
    "expr_to_py",
]


class Expr:
    """Base class of closed-form integer expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class EConst(Expr):
    value: int


@dataclass(frozen=True)
class EVar(Expr):
    name: str


@dataclass(frozen=True)
class EAdd(Expr):
    terms: Tuple[Expr, ...]


@dataclass(frozen=True)
class EMul(Expr):
    coeff: int
    operand: Expr


@dataclass(frozen=True)
class EFDiv(Expr):
    """Floor division by a positive integer constant."""

    operand: Expr
    divisor: int


@dataclass(frozen=True)
class ECDiv(Expr):
    """Ceiling division by a positive integer constant."""

    operand: Expr
    divisor: int


@dataclass(frozen=True)
class EMin(Expr):
    operands: Tuple[Expr, ...]


@dataclass(frozen=True)
class EMax(Expr):
    operands: Tuple[Expr, ...]


class Node:
    """Base class of AST statements."""

    __slots__ = ()


@dataclass(frozen=True)
class AFor(Node):
    """``for var in [lower, upper]`` (inclusive bounds)."""

    var: str
    lower: Expr
    upper: Expr
    body: "Node"


@dataclass(frozen=True)
class AGuard(Node):
    """Run ``body`` only if every listed expression is satisfied.

    ``ineqs`` must evaluate >= 0 and ``eqs`` must evaluate == 0. Generated
    for constraints that involve no loop dimension (typically parameter-only
    feasibility conditions of a disjunct, e.g. "this boundary piece exists
    only when the partition touches row zero").
    """

    ineqs: Tuple[Expr, ...]
    eqs: Tuple[Expr, ...]
    body: "Node"


@dataclass(frozen=True)
class AEmitRange(Node):
    """Emit one per-row element range ``(row..., lower..upper)`` if non-empty.

    ``row`` holds the values of all but the innermost array dimension;
    ``lower``/``upper`` bound the innermost dimension (inclusive).
    """

    row: Tuple[Expr, ...]
    lower: Expr
    upper: Expr


@dataclass(frozen=True)
class ASeq(Node):
    children: Tuple[Node, ...]


# -- interpretation ---------------------------------------------------------


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Evaluate an expression under a variable environment."""
    if isinstance(expr, EConst):
        return expr.value
    if isinstance(expr, EVar):
        return env[expr.name]
    if isinstance(expr, EAdd):
        return sum(eval_expr(t, env) for t in expr.terms)
    if isinstance(expr, EMul):
        return expr.coeff * eval_expr(expr.operand, env)
    if isinstance(expr, EFDiv):
        return floordiv(eval_expr(expr.operand, env), expr.divisor)
    if isinstance(expr, ECDiv):
        return ceildiv(eval_expr(expr.operand, env), expr.divisor)
    if isinstance(expr, EMin):
        return min(eval_expr(o, env) for o in expr.operands)
    if isinstance(expr, EMax):
        return max(eval_expr(o, env) for o in expr.operands)
    raise TypeError(f"unknown expression node {expr!r}")


EmitFn = Callable[[Tuple[int, ...], int, int], None]


def interpret(node: Node, env: Dict[str, int], emit: EmitFn) -> None:
    """Run the scanner AST directly (the non-codegen fallback)."""
    if isinstance(node, ASeq):
        for child in node.children:
            interpret(child, env, emit)
        return
    if isinstance(node, AGuard):
        if all(eval_expr(e, env) >= 0 for e in node.ineqs) and all(
            eval_expr(e, env) == 0 for e in node.eqs
        ):
            interpret(node.body, env, emit)
        return
    if isinstance(node, AFor):
        lo = eval_expr(node.lower, env)
        hi = eval_expr(node.upper, env)
        for v in range(lo, hi + 1):
            env[node.var] = v
            interpret(node.body, env, emit)
        env.pop(node.var, None)
        return
    if isinstance(node, AEmitRange):
        lo = eval_expr(node.lower, env)
        hi = eval_expr(node.upper, env)
        if lo <= hi:
            emit(tuple(eval_expr(r, env) for r in node.row), lo, hi)
        return
    raise TypeError(f"unknown AST node {node!r}")


# -- python source rendering --------------------------------------------------


def expr_to_py(expr: Expr) -> str:
    """Render an expression as Python source (helpers ``_fdiv``/``_cdiv``)."""
    if isinstance(expr, EConst):
        return repr(expr.value)
    if isinstance(expr, EVar):
        return expr.name
    if isinstance(expr, EAdd):
        return "(" + " + ".join(expr_to_py(t) for t in expr.terms) + ")"
    if isinstance(expr, EMul):
        return f"({expr.coeff} * {expr_to_py(expr.operand)})"
    if isinstance(expr, EFDiv):
        # divisor > 0, so Python's // is floor division already.
        return f"({expr_to_py(expr.operand)} // {expr.divisor})"
    if isinstance(expr, ECDiv):
        return f"(-((-({expr_to_py(expr.operand)})) // {expr.divisor}))"
    if isinstance(expr, EMin):
        return "min(" + ", ".join(expr_to_py(o) for o in expr.operands) + ")"
    if isinstance(expr, EMax):
        return "max(" + ", ".join(expr_to_py(o) for o in expr.operands) + ")"
    raise TypeError(f"unknown expression node {expr!r}")
