"""Dimension elimination: Gaussian substitution and Fourier-Motzkin.

These routines operate on lists of :class:`~repro.poly.constraint.Constraint`
whose vectors share one column layout. Eliminating a column produces
constraints with a zero coefficient in that column; the caller is responsible
for compacting the layout afterwards.

Exactness tracking
------------------
Projecting a set of *integer* points with rational techniques can only
over-approximate. Both elimination steps report whether they are exact on Z:

* Gaussian substitution with a unit pivot (|a| == 1) is exact.
* A Fourier-Motzkin combination of ``a*x + f >= 0`` (lower) and
  ``b*x + g >= 0`` with ``b < 0`` (upper) is exact when ``min(a, -b) == 1``
  (the classic Omega-test condition); otherwise the "real shadow" may
  contain integer points with no integer preimage.

The paper's contract (Section 4) is that read maps may over-approximate but
write maps must be exact, so the ``exact`` flag is propagated all the way to
the compiler's legality checks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.poly.constraint import Constraint, Kind
from repro.poly.linalg import vec_combine

__all__ = ["eliminate_column", "project_columns", "EliminationResult"]


EliminationResult = Tuple[List[Constraint], bool]


def _substitute(target: Constraint, eq: Constraint, col: int) -> Constraint:
    """Eliminate ``col`` from ``target`` using the equality ``eq``.

    Uses a positive multiplier on ``target`` so inequality direction is kept.
    """
    a = eq.vec[col]
    b = target.vec[col]
    if b == 0:
        return target
    if a > 0:
        vec = vec_combine(target.vec, a, eq.vec, -b)
    else:
        vec = vec_combine(target.vec, -a, eq.vec, b)
    return Constraint(target.kind, vec)


def eliminate_column(constraints: Sequence[Constraint], col: int) -> EliminationResult:
    """Eliminate one column from a constraint system.

    Prefers Gaussian substitution through an equality (picking a unit-pivot
    equality when available), falling back to Fourier-Motzkin on the
    inequalities. Returns the new constraint list and an exactness flag.
    """
    pivot = None
    for c in constraints:
        if c.is_eq and c.vec[col] != 0:
            if abs(c.vec[col]) == 1:
                pivot = c
                break
            if pivot is None:
                pivot = c
    if pivot is not None:
        exact = abs(pivot.vec[col]) == 1
        out = [_substitute(c, pivot, col) for c in constraints if c is not pivot]
        return out, exact

    keep: List[Constraint] = []
    lowers: List[Constraint] = []
    uppers: List[Constraint] = []
    for c in constraints:
        coeff = c.vec[col]
        if coeff == 0:
            keep.append(c)
        elif coeff > 0:
            lowers.append(c)
        else:
            uppers.append(c)

    exact = True
    for lo in lowers:
        a = lo.vec[col]
        for up in uppers:
            b = up.vec[col]
            if min(a, -b) != 1:
                exact = False
            combined = Constraint(Kind.INEQ, vec_combine(lo.vec, -b, up.vec, a))
            if not combined.is_tautology():
                keep.append(combined)
    # A column with only lower (or only upper) bounds is unbounded in one
    # direction; dropping the bounds is an exact projection.
    return keep, exact


def project_columns(constraints: Sequence[Constraint], cols: Iterable[int]) -> EliminationResult:
    """Eliminate several columns, returning constraints and joint exactness."""
    out = list(constraints)
    exact = True
    for col in sorted(set(cols), reverse=True):
        out, step_exact = eliminate_column(out, col)
        exact = exact and step_exact
        if len(out) > 2000:
            # Guard against FM blow-up; dedupe aggressively mid-flight.
            out = list(dict.fromkeys(out))
    return out, exact
