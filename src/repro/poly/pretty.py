"""Printing polyhedral objects in isl notation.

The output round-trips through :mod:`repro.poly.parser`, e.g.::

    [n] -> { [y, x] : y >= 0 and x - y >= 0 and n - x - 1 >= 0 }
"""

from __future__ import annotations

from typing import List

from repro.poly.constraint import Constraint

__all__ = [
    "basic_set_to_str",
    "set_to_str",
    "basic_map_to_str",
    "map_to_str",
    "constraint_to_str",
]


def _aff_str(names, vec) -> str:
    parts: List[str] = []
    for name, c in zip(names, vec[1:]):
        if c == 0:
            continue
        if c == 1:
            term = name
        elif c == -1:
            term = f"-{name}"
        else:
            term = f"{c}*{name}"
        parts.append(term)
    if vec[0] != 0 or not parts:
        parts.append(str(vec[0]))
    out = " + ".join(parts)
    return out.replace("+ -", "- ")


def constraint_to_str(c: Constraint, names) -> str:
    """One constraint as ``<affine> = 0`` or ``<affine> >= 0``."""
    op = "=" if c.is_eq else ">="
    return f"{_aff_str(names, c.vec)} {op} 0"


def _prefix(space) -> str:
    return f"[{', '.join(space.params)}] -> " if space.params else ""


def _body(space, constraints, *, arrow: bool) -> str:
    names = space.all_names
    conds = " and ".join(constraint_to_str(c, names) for c in constraints)
    if arrow:
        tup = f"[{', '.join(space.in_dims)}] -> [{', '.join(space.out_dims)}]"
    else:
        tup = f"[{', '.join(space.out_dims)}]"
    return f"{tup} : {conds}" if conds else tup


def basic_set_to_str(bset) -> str:
    """A convex set in isl notation."""
    if bset._trivially_empty:
        return f"{_prefix(bset.space)}{{ }}"
    return f"{_prefix(bset.space)}{{ {_body(bset.space, bset.constraints, arrow=False)} }}"


def set_to_str(s) -> str:
    """A (union) set in isl notation; disjuncts joined with ';'."""
    if not s.disjuncts:
        return f"{_prefix(s.space)}{{ }}"
    bodies = "; ".join(_body(d.space, d.constraints, arrow=False) for d in s.disjuncts)
    return f"{_prefix(s.space)}{{ {bodies} }}"


def basic_map_to_str(bmap) -> str:
    """A convex map in isl notation."""
    return f"{_prefix(bmap.space)}{{ {_body(bmap.space, bmap.constraints, arrow=True)} }}"


def map_to_str(m) -> str:
    """A (union) map in isl notation; disjuncts joined with ';'."""
    if not m.disjuncts:
        return f"{_prefix(m.space)}{{ }}"
    bodies = "; ".join(_body(d.space, d.constraints, arrow=True) for d in m.disjuncts)
    return f"{_prefix(m.space)}{{ {bodies} }}"
