"""Dimension spaces for polyhedral objects.

A :class:`Space` names the columns of every constraint vector:

``[const, params..., in_dims..., out_dims...]``

Sets use only *out* dimensions (matching isl, where set dimensions are "out"
dimensions of a nullary map); maps use both *in* and *out*. Parameters are
symbolic constants that are fixed at runtime (e.g. the problem size ``n`` or
the partition bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import SpaceMismatchError

__all__ = ["Space"]


@dataclass(frozen=True)
class Space:
    """An ordered, named dimension space.

    Attributes:
        params: names of symbolic parameters.
        in_dims: input (domain) dimension names; empty for sets.
        out_dims: output (range) dimension names; the "set dimensions".
    """

    params: Tuple[str, ...] = ()
    in_dims: Tuple[str, ...] = ()
    out_dims: Tuple[str, ...] = ()
    _columns: Dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "in_dims", tuple(self.in_dims))
        object.__setattr__(self, "out_dims", tuple(self.out_dims))
        names = list(self.params) + list(self.in_dims) + list(self.out_dims)
        if len(set(names)) != len(names):
            raise SpaceMismatchError(f"duplicate dimension names in space: {names}")
        columns = {name: i + 1 for i, name in enumerate(names)}
        object.__setattr__(self, "_columns", columns)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def set_space(dims: Sequence[str], params: Sequence[str] = ()) -> "Space":
        """A set space with the given (out) dimensions."""
        return Space(params=tuple(params), in_dims=(), out_dims=tuple(dims))

    @staticmethod
    def map_space(
        in_dims: Sequence[str], out_dims: Sequence[str], params: Sequence[str] = ()
    ) -> "Space":
        """A map space with the given input and output dimensions."""
        return Space(params=tuple(params), in_dims=tuple(in_dims), out_dims=tuple(out_dims))

    # -- queries -----------------------------------------------------------

    @property
    def is_set(self) -> bool:
        """True when this space has no input dimensions."""
        return not self.in_dims

    @property
    def n_params(self) -> int:
        return len(self.params)

    @property
    def n_in(self) -> int:
        return len(self.in_dims)

    @property
    def n_out(self) -> int:
        return len(self.out_dims)

    @property
    def n_dims(self) -> int:
        """Number of true (non-parameter) dimensions."""
        return self.n_in + self.n_out

    @property
    def ncols(self) -> int:
        """Number of columns in a constraint vector (1 + params + dims)."""
        return 1 + self.n_params + self.n_dims

    @property
    def all_names(self) -> Tuple[str, ...]:
        """All column names in order (excluding the constant column)."""
        return self.params + self.in_dims + self.out_dims

    def column_of(self, name: str) -> int:
        """Constraint-vector column index of a named dimension or parameter."""
        try:
            return self._columns[name]
        except KeyError:
            raise SpaceMismatchError(f"unknown dimension {name!r} in space {self}") from None

    def has(self, name: str) -> bool:
        return name in self._columns

    def name_of(self, col: int) -> str:
        """Inverse of :meth:`column_of` (column 0 is the constant)."""
        if col == 0:
            return "1"
        return self.all_names[col - 1]

    def param_columns(self) -> range:
        return range(1, 1 + self.n_params)

    def in_columns(self) -> range:
        start = 1 + self.n_params
        return range(start, start + self.n_in)

    def out_columns(self) -> range:
        start = 1 + self.n_params + self.n_in
        return range(start, start + self.n_out)

    def dim_columns(self) -> range:
        """Columns of all true dimensions (in followed by out)."""
        start = 1 + self.n_params
        return range(start, start + self.n_dims)

    # -- derived spaces ----------------------------------------------------

    def domain(self) -> "Space":
        """Set space over this map's input dimensions."""
        return Space.set_space(self.in_dims, self.params)

    def range(self) -> "Space":
        """Set space over this map's output dimensions."""
        return Space.set_space(self.out_dims, self.params)

    def reversed(self) -> "Space":
        """Map space with in and out swapped."""
        return Space(params=self.params, in_dims=self.out_dims, out_dims=self.in_dims)

    def drop_dims(self, names: Iterable[str]) -> "Space":
        """Space with the given (non-parameter) dimensions removed."""
        drop = set(names)
        unknown = drop - set(self.in_dims) - set(self.out_dims)
        if unknown:
            raise SpaceMismatchError(f"cannot drop non-dimensions {sorted(unknown)} from {self}")
        return Space(
            params=self.params,
            in_dims=tuple(d for d in self.in_dims if d not in drop),
            out_dims=tuple(d for d in self.out_dims if d not in drop),
        )

    def drop_params(self, names: Iterable[str]) -> "Space":
        """Space with the given parameters removed."""
        drop = set(names)
        unknown = drop - set(self.params)
        if unknown:
            raise SpaceMismatchError(f"cannot drop non-parameters {sorted(unknown)} from {self}")
        return Space(
            params=tuple(p for p in self.params if p not in drop),
            in_dims=self.in_dims,
            out_dims=self.out_dims,
        )

    def add_params(self, names: Sequence[str]) -> "Space":
        """Space with additional parameters appended."""
        return Space(
            params=self.params + tuple(n for n in names if n not in self.params),
            in_dims=self.in_dims,
            out_dims=self.out_dims,
        )

    def rename(self, mapping: Dict[str, str]) -> "Space":
        """Space with dimensions/parameters renamed via ``mapping``."""
        def ren(names: Tuple[str, ...]) -> Tuple[str, ...]:
            return tuple(mapping.get(n, n) for n in names)

        return Space(params=ren(self.params), in_dims=ren(self.in_dims), out_dims=ren(self.out_dims))

    def to_set(self) -> "Space":
        """Flatten a map space to a set space over in+out (wrapped relation)."""
        return Space.set_space(self.in_dims + self.out_dims, self.params)

    def check_compatible(self, other: "Space") -> None:
        """Raise :class:`SpaceMismatchError` unless both spaces are identical."""
        if (
            self.params != other.params
            or self.in_dims != other.in_dims
            or self.out_dims != other.out_dims
        ):
            raise SpaceMismatchError(f"space mismatch: {self} vs {other}")

    def __str__(self) -> str:
        par = f"[{', '.join(self.params)}] -> " if self.params else ""
        if self.is_set:
            return f"{par}{{ [{', '.join(self.out_dims)}] }}"
        return f"{par}{{ [{', '.join(self.in_dims)}] -> [{', '.join(self.out_dims)}] }}"
