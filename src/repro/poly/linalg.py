"""Exact integer vector helpers for the polyhedral layer.

Vectors are plain tuples of Python ``int`` so arithmetic never overflows and
never loses precision. Vectors follow the *column layout* defined by
:class:`repro.poly.space.Space`: index 0 is the constant term, followed by
parameter columns, then dimension columns.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Sequence, Tuple

__all__ = [
    "Vec",
    "vec_add",
    "vec_sub",
    "vec_neg",
    "vec_scale",
    "vec_combine",
    "vec_gcd",
    "vec_normalize",
    "vec_is_zero",
    "vec_dot",
    "floordiv",
    "ceildiv",
]

Vec = Tuple[int, ...]


def vec_add(a: Sequence[int], b: Sequence[int]) -> Vec:
    """Component-wise sum of two equal-length vectors."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return tuple(x + y for x, y in zip(a, b))


def vec_sub(a: Sequence[int], b: Sequence[int]) -> Vec:
    """Component-wise difference ``a - b``."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return tuple(x - y for x, y in zip(a, b))


def vec_neg(a: Sequence[int]) -> Vec:
    """Component-wise negation."""
    return tuple(-x for x in a)


def vec_scale(a: Sequence[int], k: int) -> Vec:
    """Vector scaled by the integer ``k``."""
    return tuple(x * k for x in a)


def vec_combine(a: Sequence[int], ka: int, b: Sequence[int], kb: int) -> Vec:
    """Linear combination ``ka * a + kb * b`` (the Fourier-Motzkin kernel op)."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return tuple(ka * x + kb * y for x, y in zip(a, b))


def vec_gcd(a: Iterable[int]) -> int:
    """GCD of all components (0 for the zero vector)."""
    g = 0
    for x in a:
        g = gcd(g, abs(x))
        if g == 1:
            return 1
    return g


def vec_normalize(a: Sequence[int], *, skip_const: bool = False) -> Vec:
    """Divide a vector by the GCD of its components.

    With ``skip_const`` the constant term (index 0) is excluded from the GCD
    computation and *floor*-divided by it, which is the correct tightening for
    an inequality ``sum(c_i x_i) + c0 >= 0``: dividing the coefficients by g
    allows rounding the constant down without losing integer points.
    """
    if skip_const:
        g = vec_gcd(a[1:])
        if g <= 1:
            return tuple(a)
        out = [a[0] // g]
        out.extend(x // g for x in a[1:])
        return tuple(out)
    g = vec_gcd(a)
    if g <= 1:
        return tuple(a)
    return tuple(x // g for x in a)


def vec_is_zero(a: Sequence[int]) -> bool:
    """True when every component is zero."""
    return all(x == 0 for x in a)


def vec_dot(a: Sequence[int], b: Sequence[int]) -> int:
    """Exact dot product."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return sum(x * y for x, y in zip(a, b))


def floordiv(a: int, b: int) -> int:
    """Floor division that accepts a negative divisor (isl's ``fdiv_q``)."""
    if b < 0:
        a, b = -a, -b
    return a // b


def ceildiv(a: int, b: int) -> int:
    """Ceiling division that accepts a negative divisor (isl's ``cdiv_q``)."""
    if b < 0:
        a, b = -a, -b
    return -((-a) // b)
