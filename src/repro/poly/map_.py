"""Polyhedral maps (relations between integer tuples).

A :class:`BasicMap` relates input tuples to output tuples through a
conjunction of affine constraints over the combined ``in + out`` space. The
access maps of Section 4 of the paper are of this shape: inputs are the six
grid coordinates (``blockOff.{z,y,x}``, ``blockIdx.{z,y,x}``), outputs are
array indices, and scalar kernel arguments appear as parameters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import SpaceMismatchError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet, _rebind_constraint
from repro.poly.constraint import Constraint
from repro.poly.set_ import Set
from repro.poly.space import Space

__all__ = ["BasicMap", "Map"]


class BasicMap:
    """A single-disjunct polyhedral relation."""

    __slots__ = ("space", "bset")

    def __init__(self, space: Space, constraints: Sequence[Constraint] = (), *, exact: bool = True):
        if space.is_set:
            raise SpaceMismatchError("BasicMap requires a map space (with input dims)")
        self.space = space
        self.bset = BasicSet(space, constraints, exact=exact)

    @staticmethod
    def _wrap(space: Space, bset: BasicSet) -> "BasicMap":
        bm = BasicMap.__new__(BasicMap)
        bm.space = space
        bm.bset = bset
        return bm

    # -- constructors ------------------------------------------------------

    @staticmethod
    def universe(space: Space) -> "BasicMap":
        return BasicMap(space, ())

    @staticmethod
    def from_affine_exprs(
        space: Space, out_exprs: Sequence[Aff], domain: Sequence[Constraint] = ()
    ) -> "BasicMap":
        """Map defined by ``out_i == expr_i(in, params)`` plus domain constraints."""
        if len(out_exprs) != space.n_out:
            raise SpaceMismatchError(
                f"{len(out_exprs)} output expressions for {space.n_out} output dims"
            )
        cons: List[Constraint] = []
        for name, expr in zip(space.out_dims, out_exprs):
            cons.append(Constraint.eq(Aff.var(space, name) - expr.rebind(space)))
        cons.extend(domain)
        return BasicMap(space, cons)

    # -- queries -----------------------------------------------------------

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self.bset.constraints

    @property
    def exact(self) -> bool:
        return self.bset.exact

    def is_empty(self) -> bool:
        return self.bset.is_empty()

    def contains(self, values: Mapping[str, int]) -> bool:
        return self.bset.contains(values)

    # -- operations ---------------------------------------------------------

    def intersect(self, other: "BasicMap") -> "BasicMap":
        self.space.check_compatible(other.space)
        return BasicMap._wrap(self.space, self.bset.intersect(other.bset))

    def intersect_domain(self, dom: BasicSet) -> "BasicMap":
        """Restrict the relation's input tuples to ``dom``.

        ``dom`` must be a set over the map's input dimensions (a subset of
        names is allowed; missing names are unconstrained).
        """
        cons = [_rebind_constraint(c, dom.space, self.space) for c in dom.constraints]
        return BasicMap._wrap(
            self.space,
            self.bset.add_constraints(cons)._with_exact(self.exact and dom.exact),
        )

    def intersect_range(self, rng: BasicSet) -> "BasicMap":
        """Restrict the relation's output tuples to ``rng``."""
        cons = [_rebind_constraint(c, rng.space, self.space) for c in rng.constraints]
        return BasicMap._wrap(
            self.space,
            self.bset.add_constraints(cons)._with_exact(self.exact and rng.exact),
        )

    def domain(self) -> BasicSet:
        """Projection onto the input dimensions."""
        out = self.bset.project_out(self.space.out_dims)
        return _as_set_space(out, Space.set_space(self.space.in_dims, self.space.params))

    def range(self) -> BasicSet:
        """Projection onto the output dimensions (the image of the domain)."""
        out = self.bset.project_out(self.space.in_dims)
        return _as_set_space(out, Space.set_space(self.space.out_dims, self.space.params))

    def image(self, dom: BasicSet) -> BasicSet:
        """Image of ``dom`` under this relation."""
        return self.intersect_domain(dom).range()

    def reverse(self) -> "BasicMap":
        """The inverse relation (in/out swapped)."""
        new_space = self.space.reversed()
        cons = [_rebind_constraint(c, self.space, new_space) for c in self.constraints]
        return BasicMap(new_space, cons, exact=self.exact)

    def wrap(self) -> BasicSet:
        """The relation as a set over ``in + out`` dimensions."""
        return _as_set_space(self.bset, self.space.to_set())

    def rename(self, mapping: Dict[str, str]) -> "BasicMap":
        bm = BasicMap.__new__(BasicMap)
        bm.space = self.space.rename(mapping)
        bm.bset = self.bset.rename(mapping)
        return bm

    def add_params(self, names: Sequence[str]) -> "BasicMap":
        space = self.space.add_params(names)
        cons = [_rebind_constraint(c, self.space, space) for c in self.constraints]
        return BasicMap(space, cons, exact=self.exact)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasicMap):
            return NotImplemented
        return self.space == other.space and self.bset == other.bset

    def __hash__(self) -> int:
        return hash((self.space, self.bset))

    def __repr__(self) -> str:
        from repro.poly.pretty import basic_map_to_str

        return basic_map_to_str(self)


class Map:
    """A union of :class:`BasicMap` disjuncts."""

    __slots__ = ("space", "disjuncts")

    def __init__(self, space: Space, disjuncts: Sequence[BasicMap] = ()) -> None:
        self.space = space
        kept: List[BasicMap] = []
        seen = set()
        for d in disjuncts:
            space.check_compatible(d.space)
            if d.bset._trivially_empty:
                continue
            key = (frozenset(d.constraints), d.exact)
            if key in seen:
                continue
            seen.add(key)
            kept.append(d)
        self.disjuncts: Tuple[BasicMap, ...] = tuple(kept)

    @staticmethod
    def from_basic(bmap: BasicMap) -> "Map":
        return Map(bmap.space, [bmap])

    @property
    def exact(self) -> bool:
        return all(d.exact for d in self.disjuncts)

    def is_empty(self) -> bool:
        return all(d.is_empty() for d in self.disjuncts)

    def union(self, other: "Map") -> "Map":
        self.space.check_compatible(other.space)
        return Map(self.space, list(self.disjuncts) + list(other.disjuncts))

    def intersect_domain(self, dom: BasicSet) -> "Map":
        return Map(self.space, [d.intersect_domain(dom) for d in self.disjuncts])

    def image(self, dom: BasicSet) -> Set:
        rng_space = Space.set_space(self.space.out_dims, self.space.params)
        return Set(rng_space, [d.image(dom) for d in self.disjuncts])

    def range(self) -> Set:
        rng_space = Space.set_space(self.space.out_dims, self.space.params)
        return Set(rng_space, [d.range() for d in self.disjuncts])

    def add_params(self, names: Sequence[str]) -> "Map":
        return Map(self.space.add_params(names), [d.add_params(names) for d in self.disjuncts])

    def contains(self, values: Mapping[str, int]) -> bool:
        return any(d.contains(values) for d in self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Map):
            return NotImplemented
        return self.space == other.space and set(self.disjuncts) == set(other.disjuncts)

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.disjuncts)))

    def __repr__(self) -> str:
        from repro.poly.pretty import map_to_str

        return map_to_str(self)


def _as_set_space(bset: BasicSet, space: Space) -> BasicSet:
    """Re-tag a projected basic set with an explicit set space."""
    out = BasicSet(space, (), exact=bset.exact, _presimplified=True)
    out.constraints = tuple(
        _rebind_constraint(c, bset.space, space) for c in bset.constraints
    )
    out._trivially_empty = bset._trivially_empty
    return out
