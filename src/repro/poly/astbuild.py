"""Building scanner ASTs from polyhedral sets.

Given a set over array-index dimensions (with runtime parameters), this
module produces the loop-nest AST that enumerates the set's integer points
as per-row element ranges (Section 6.1 of the paper): nested loops over all
but the innermost dimension, and for every visited row the lexicographic
minimum/maximum of the innermost (row-major contiguous) dimension.

For unions, each convex disjunct is scanned separately — exactly the paper's
remedy for the over-approximation a union-level scan would introduce. The
consumer (the runtime's buffer synchronizer) merges overlapping ranges.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.ast import (
    AEmitRange,
    AFor,
    AGuard,
    ASeq,
    ECDiv,
    EConst,
    EFDiv,
    EMax,
    EMin,
    EMul,
    EAdd,
    EVar,
    Expr,
    Node,
)
from repro.poly.basic_set import BasicSet, BoundSpec
from repro.poly.linalg import Vec
from repro.poly.set_ import Set

__all__ = ["build_scan_ast", "build_scan_ast_union", "bound_exprs"]


def _aff_expr(names: Sequence[str], vec: Vec) -> Expr:
    """Affine vector (column layout over ``names``) to an expression tree."""
    terms: List[Expr] = []
    if vec[0] != 0:
        terms.append(EConst(vec[0]))
    for name, coeff in zip(names, vec[1:]):
        if coeff == 0:
            continue
        if coeff == 1:
            terms.append(EVar(name))
        else:
            terms.append(EMul(coeff, EVar(name)))
    if not terms:
        return EConst(0)
    if len(terms) == 1:
        return terms[0]
    return EAdd(tuple(terms))


def bound_exprs(bset: BasicSet, name: str) -> Tuple[Expr, Expr]:
    """(lower, upper) bound expressions for one dimension of ``bset``.

    Constraints involving later dimensions must already have been projected
    away. Raises :class:`PolyhedralError` if the dimension is unbounded.
    """
    spec: BoundSpec = bset.dim_bounds(name)
    names = bset.space.all_names
    lowers: List[Expr] = []
    for div, rest in spec.lowers:
        e = _aff_expr(names, tuple(-r for r in rest))
        lowers.append(e if div == 1 else ECDiv(e, div))
    uppers: List[Expr] = []
    for div, rest in spec.uppers:
        e = _aff_expr(names, rest)
        uppers.append(e if div == 1 else EFDiv(e, div))
    if not lowers or not uppers:
        raise PolyhedralError(
            f"dimension {name!r} of {bset!r} is unbounded; cannot generate a scanner"
        )
    lo = lowers[0] if len(lowers) == 1 else EMax(tuple(lowers))
    hi = uppers[0] if len(uppers) == 1 else EMin(tuple(uppers))
    return lo, hi


def build_scan_ast(bset: BasicSet) -> Node:
    """Scanner AST for one convex set over its (out) dimensions.

    The innermost dimension (assumed row-major contiguous) is emitted as a
    range; outer dimensions become loops whose bounds come from
    Fourier-Motzkin shadows (all later dimensions projected out). Every
    original constraint is enforced at the loop level of its highest
    dimension, so the scan is exact for a single convex disjunct; inexact FM
    shadows can only cause empty inner ranges, which the emit guard drops.
    """
    dims = bset.space.out_dims
    if not dims:
        raise PolyhedralError("cannot build a scanner for a 0-dimensional set")
    if bset._trivially_empty:
        return ASeq(())

    # Shadow sets: shadow[k] has dims k+1.. projected out.
    shadows: List[BasicSet] = [bset]
    for k in range(len(dims) - 1, 0, -1):
        shadows.append(shadows[-1].project_out([dims[k]]))
    shadows.reverse()  # shadows[k] bounds dims[k]
    if any(s._trivially_empty for s in shadows):
        return ASeq(())

    inner_lo, inner_hi = bound_exprs(shadows[-1], dims[-1])
    node: Node = AEmitRange(
        row=tuple(EVar(d) for d in dims[:-1]), lower=inner_lo, upper=inner_hi
    )
    for k in range(len(dims) - 2, -1, -1):
        lo, hi = bound_exprs(shadows[k], dims[k])
        node = AFor(var=dims[k], lower=lo, upper=hi, body=node)

    # Constraints that involve no dimension at all (parameter-only
    # feasibility conditions) never become loop bounds; they guard the
    # whole nest.
    names = bset.space.all_names
    dim_cols = set(bset.space.dim_columns())
    guard_ineqs: List[Expr] = []
    guard_eqs: List[Expr] = []
    for c in bset.constraints:
        if any(c.vec[col] != 0 for col in dim_cols):
            continue
        expr = _aff_expr(names, c.vec)
        (guard_eqs if c.is_eq else guard_ineqs).append(expr)
    if guard_ineqs or guard_eqs:
        node = AGuard(tuple(guard_ineqs), tuple(guard_eqs), node)
    return node


def build_scan_ast_union(s: Set) -> Node:
    """Scanner AST for a union: each convex piece scanned separately."""
    pieces: List[Node] = []
    for d in s.disjuncts:
        if d.is_empty():
            continue
        pieces.append(build_scan_ast(d))
    if len(pieces) == 1:
        return pieces[0]
    return ASeq(tuple(pieces))
