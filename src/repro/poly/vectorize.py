"""Vectorized scanner evaluation: numpy index arithmetic over scan ASTs.

The compiled Python scanners (:mod:`repro.poly.codegen`) removed the
tree-walking overhead but still step the per-row loops one iteration at a
time; for a 2-D stencil partition that is thousands of interpreter-level
iterations per enumerator call. This module evaluates the *innermost* loop
of a scan AST as whole numpy arrays instead: the loop variable becomes an
``arange``, guards become boolean masks, and every surviving iteration's
``(base + lo, base + hi + 1)`` range materializes in one shot.

The programs are built behind a :func:`memoize`\\ d dispatcher (the pycuda
``@memoize`` idiom) keyed on the AST node — scan ASTs are frozen
dataclasses, hence hashable — so each enumerator compiles once per process.
Shapes the walker cannot handle (loop bounds depending on a vectorized
dimension, unknown node kinds) raise :exc:`VectorizeError` and the caller
falls back to the scalar scanner; results are bit-identical either way,
including the emitted-range *count* that drives host-cost accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.poly.ast import (
    AEmitRange,
    AFor,
    AGuard,
    ASeq,
    EAdd,
    ECDiv,
    EConst,
    EFDiv,
    EMax,
    EMin,
    EMul,
    EVar,
    Expr,
    Node,
)

__all__ = ["VectorizeError", "memoize", "vector_program", "VectorProgram"]

Value = Union[int, np.ndarray]


class VectorizeError(Exception):
    """The AST (or its runtime values) cannot be evaluated vectorized."""


def memoize(fn: Callable) -> Callable:
    """Cache ``fn``'s result per positional-argument tuple (pycuda-style)."""
    cache: Dict[tuple, object] = {}

    def wrapper(*args):
        try:
            return cache[args]
        except KeyError:
            result = fn(*args)
            cache[args] = result
            return result

    wrapper.cache = cache  # type: ignore[attr-defined]
    wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
    wrapper.__doc__ = fn.__doc__
    return wrapper


def _eval(expr: Expr, env: Dict[str, Value]) -> Value:
    """Evaluate one affine expression over ints and/or int64 arrays."""
    if isinstance(expr, EConst):
        return expr.value
    if isinstance(expr, EVar):
        return env[expr.name]
    if isinstance(expr, EAdd):
        total: Value = 0
        for term in expr.terms:
            total = total + _eval(term, env)
        return total
    if isinstance(expr, EMul):
        return expr.coeff * _eval(expr.operand, env)
    if isinstance(expr, EFDiv):
        return _eval(expr.operand, env) // expr.divisor
    if isinstance(expr, ECDiv):
        # Ceiling division with a positive divisor, matching expr_to_py's
        # -((-x) // d) rendering for ints and arrays alike.
        return -((-_eval(expr.operand, env)) // expr.divisor)
    if isinstance(expr, (EMin, EMax)):
        values = [_eval(o, env) for o in expr.operands]
        if any(isinstance(v, np.ndarray) for v in values):
            combine = np.minimum if isinstance(expr, EMin) else np.maximum
            out = values[0]
            for v in values[1:]:
                out = combine(out, v)
            return out
        return min(values) if isinstance(expr, EMin) else max(values)
    raise VectorizeError(f"unsupported expression {type(expr).__name__}")


def _collect_fors(node: Node, out: List[AFor]) -> None:
    if isinstance(node, ASeq):
        for child in node.children:
            _collect_fors(child, out)
    elif isinstance(node, AGuard):
        _collect_fors(node.body, out)
    elif isinstance(node, AFor):
        out.append(node)
        _collect_fors(node.body, out)
    elif not isinstance(node, AEmitRange):
        raise VectorizeError(f"unsupported AST node {type(node).__name__}")


class VectorProgram:
    """One scan AST prepared for vectorized row enumeration."""

    def __init__(self, node: Node, param_names: Tuple[str, ...]) -> None:
        self.node = node
        self.param_names = param_names
        fors: List[AFor] = []
        _collect_fors(node, fors)
        # Loops that still contain a loop run as Python loops; only the
        # innermost level becomes an arange. Identity-keyed: the AST is
        # immutable and owned by `self.node` for the program's lifetime.
        self._scalar_loops = frozenset(
            id(f) for f in fors if any(True for _ in _iter_fors(f.body))
        )

    def run(
        self, params: Sequence[int], strides: Sequence[int]
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Merged flat element ranges plus the raw emission count.

        Exactly :func:`repro.poly.ast.interpret` driving the enumerator's
        emit callback, with the innermost loop dimension evaluated as one
        array: same ranges (after merging), same number of emissions.
        """
        env: Dict[str, Value] = {
            name: int(params[i]) for i, name in enumerate(self.param_names)
        }
        row_strides = tuple(strides[:-1])
        scalar_starts: List[int] = []
        scalar_ends: List[int] = []
        vec_starts: List[np.ndarray] = []
        vec_ends: List[np.ndarray] = []
        count = 0

        def go(node: Node, mask: Optional[np.ndarray], length: Optional[int]) -> None:
            nonlocal count
            if isinstance(node, ASeq):
                for child in node.children:
                    go(child, mask, length)
                return
            if isinstance(node, AGuard):
                m = mask
                for e in node.ineqs:
                    v = _eval(e, env)
                    if isinstance(v, np.ndarray):
                        cond = v >= 0
                        m = cond if m is None else (m & cond)
                    elif v < 0:
                        return
                for e in node.eqs:
                    v = _eval(e, env)
                    if isinstance(v, np.ndarray):
                        cond = v == 0
                        m = cond if m is None else (m & cond)
                    elif v != 0:
                        return
                go(node.body, m, length)
                return
            if isinstance(node, AFor):
                lo = _eval(node.lower, env)
                hi = _eval(node.upper, env)
                if isinstance(lo, np.ndarray) or isinstance(hi, np.ndarray):
                    raise VectorizeError(
                        f"bounds of loop {node.var!r} depend on a vectorized dimension"
                    )
                if hi < lo:
                    return
                if id(node) in self._scalar_loops:
                    for value in range(lo, hi + 1):
                        env[node.var] = value
                        go(node.body, mask, length)
                else:
                    env[node.var] = np.arange(lo, hi + 1, dtype=np.int64)
                    go(node.body, mask, int(hi - lo + 1))
                env.pop(node.var, None)
                return
            # AEmitRange
            lo = _eval(node.lower, env)
            hi = _eval(node.upper, env)
            base: Value = 0
            for r, s in zip(node.row, row_strides):
                base = base + _eval(r, env) * s
            if length is None:
                if lo <= hi:
                    count += 1
                    scalar_starts.append(base + lo)
                    scalar_ends.append(base + hi + 1)
                return
            valid = lo <= hi
            m = valid if mask is None else (mask & valid)
            starts: Value = base + lo
            ends: Value = base + hi + 1
            if isinstance(m, np.ndarray):
                starts = np.broadcast_to(np.asarray(starts, dtype=np.int64), m.shape)[m]
                ends = np.broadcast_to(np.asarray(ends, dtype=np.int64), m.shape)[m]
            elif m:
                starts = np.broadcast_to(np.asarray(starts, dtype=np.int64), (length,))
                ends = np.broadcast_to(np.asarray(ends, dtype=np.int64), (length,))
            else:
                return
            if starts.size:
                count += int(starts.size)
                vec_starts.append(starts)
                vec_ends.append(ends)

        go(self.node, None, None)

        if not vec_starts and not scalar_starts:
            return [], count
        chunks_s: List[np.ndarray] = list(vec_starts)
        chunks_e: List[np.ndarray] = list(vec_ends)
        if scalar_starts:
            chunks_s.append(np.asarray(scalar_starts, dtype=np.int64))
            chunks_e.append(np.asarray(scalar_ends, dtype=np.int64))
        starts_all = np.concatenate(chunks_s) if len(chunks_s) > 1 else chunks_s[0]
        ends_all = np.concatenate(chunks_e) if len(chunks_e) > 1 else chunks_e[0]
        return _merge_flat(starts_all, ends_all), count


def _iter_fors(node: Node):
    if isinstance(node, ASeq):
        for child in node.children:
            yield from _iter_fors(child)
    elif isinstance(node, AGuard):
        yield from _iter_fors(node.body)
    elif isinstance(node, AFor):
        yield node


def _merge_flat(
    starts: np.ndarray, ends: np.ndarray
) -> List[Tuple[int, int]]:
    """Sort-and-coalesce half-open ranges, identical to ``merge_ranges``.

    ``merge_ranges`` sorts (lo, hi) tuples lexicographically and merges a
    range into the current run when its ``lo`` does not exceed the running
    maximum ``hi``; the array form sorts by (start, end), takes the running
    maximum of ends, and cuts a new run exactly where a start exceeds the
    previous running maximum.
    """
    order = np.lexsort((ends, starts))
    s = starts[order]
    e = ends[order]
    running = np.maximum.accumulate(e)
    new_run = np.empty(s.shape, dtype=bool)
    new_run[0] = True
    np.greater(s[1:], running[:-1], out=new_run[1:])
    heads = np.flatnonzero(new_run)
    run_ends = np.append(running[heads[1:] - 1], running[-1])
    return list(zip(s[heads].tolist(), run_ends.tolist()))


@memoize
def vector_program(node: Node, param_names: Tuple[str, ...]) -> VectorProgram:
    """The memoized vectorized program for one scan AST.

    Keyed on the (hashable, frozen) AST and the positional parameter
    names; every enumerator of a compiled app shares one program per
    distinct access shape. Raises :exc:`VectorizeError` immediately when
    the AST contains unsupported node kinds, so callers can disable the
    vectorized path once instead of per call.
    """
    return VectorProgram(node, param_names)
