"""Compiling scanner ASTs to Python functions.

The paper translates isl ASTs into LLVM IR functions embedded in the
application (Section 6.1-6.2); the analogue here renders the AST as Python
source and compiles it with :func:`compile`, so the hot scanning loops run
without tree-walking overhead. The interpreted path
(:func:`repro.poly.ast.interpret`) is kept for the ablation benchmark that
quantifies exactly this difference.
"""

from __future__ import annotations

import itertools
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.ast import (
    AEmitRange,
    AFor,
    AGuard,
    ASeq,
    EAdd,
    ECDiv,
    EConst,
    EFDiv,
    EMax,
    EMin,
    EMul,
    EVar,
    Expr,
    Node,
    expr_to_py,
    interpret,
)
from repro.poly.astbuild import build_scan_ast, build_scan_ast_union
from repro.poly.basic_set import BasicSet
from repro.poly.set_ import Set

__all__ = [
    "ScanFn",
    "compile_scanner",
    "interpreted_scanner",
    "prepare_scanner",
    "render_scanner_source",
]

ScanFn = Callable[..., None]
_counter = itertools.count()


def _emit_node(node: Node, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(node, ASeq):
        if not node.children:
            lines.append(f"{pad}pass")
        for child in node.children:
            _emit_node(child, lines, indent)
        return
    if isinstance(node, AGuard):
        conds = [f"{expr_to_py(e)} >= 0" for e in node.ineqs]
        conds.extend(f"{expr_to_py(e)} == 0" for e in node.eqs)
        lines.append(f"{pad}if {' and '.join(conds)}:")
        _emit_node(node.body, lines, indent + 1)
        return
    if isinstance(node, AFor):
        lines.append(
            f"{pad}for {node.var} in range({expr_to_py(node.lower)}, "
            f"{expr_to_py(node.upper)} + 1):"
        )
        _emit_node(node.body, lines, indent + 1)
        return
    if isinstance(node, AEmitRange):
        lo = expr_to_py(node.lower)
        hi = expr_to_py(node.upper)
        row = ", ".join(expr_to_py(r) for r in node.row)
        row_tuple = f"({row},)" if node.row else "()"
        lines.append(f"{pad}_lo = {lo}")
        lines.append(f"{pad}_hi = {hi}")
        lines.append(f"{pad}if _lo <= _hi:")
        lines.append(f"{pad}    _emit({row_tuple}, _lo, _hi)")
        return
    raise TypeError(f"unknown AST node {node!r}")


def render_scanner_source(
    node: Node, param_names: Sequence[str], *, fn_name: str = "_scan"
) -> str:
    """Render a scanner AST as the source of ``fn_name(params, emit)``.

    ``params`` is a flat sequence of integers bound positionally to
    ``param_names`` — matching the paper's enumerator interface (Section
    6.2), where partition bounds and scalar arguments arrive as arrays of
    64-bit integers and results are delivered through a callback.
    """
    node, param_names = _sanitize(node, param_names)
    lines = [f"def {fn_name}(_params, _emit):"]
    for i, name in enumerate(param_names):
        lines.append(f"    {name} = _params[{i}]")
    _emit_node(node, lines, 1)
    if len(lines) == 1 + len(param_names):
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def compile_scanner(
    set_or_bset, param_names: Optional[Sequence[str]] = None
) -> ScanFn:
    """Compile a scanner ``f(params, emit)`` for a set or union of sets.

    ``emit`` is invoked as ``emit(row, lo, hi)`` once per non-empty per-row
    element range; ``row`` excludes the innermost dimension, whose inclusive
    bounds are ``lo``/``hi``.
    """
    node, names = _prepare(set_or_bset, param_names)
    fn_name = f"_scan_{next(_counter)}"
    source = render_scanner_source(node, names, fn_name=fn_name)
    namespace: Dict[str, object] = {}
    code = compile(source, filename=f"<poly-scanner:{fn_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - compiling our own generated source
    fn = namespace[fn_name]
    fn.__poly_source__ = source  # type: ignore[attr-defined]
    return fn  # type: ignore[return-value]


def interpreted_scanner(
    set_or_bset, param_names: Optional[Sequence[str]] = None
) -> ScanFn:
    """Like :func:`compile_scanner` but walking the AST at scan time."""
    node, names = _prepare(set_or_bset, param_names)

    def scan(params: Sequence[int], emit) -> None:
        env = {name: params[i] for i, name in enumerate(names)}
        interpret(node, env, emit)

    return scan


def _safe_name(name: str) -> str:
    """Map an arbitrary dimension name to a valid Python identifier."""
    safe = re.sub(r"\W", "_", name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    if safe in ("_params", "_emit", "_lo", "_hi", "min", "max", "range"):
        safe = safe + "_v"
    return safe


def _sanitize(node: Node, param_names: Sequence[str]) -> Tuple[Node, Tuple[str, ...]]:
    """Rename every variable in the AST to an identifier-safe name."""
    mapping = {n: _safe_name(n) for n in param_names}

    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, EVar):
            return EVar(mapping.setdefault(e.name, _safe_name(e.name)))
        if isinstance(e, EAdd):
            return EAdd(tuple(fix_expr(t) for t in e.terms))
        if isinstance(e, EMul):
            return EMul(e.coeff, fix_expr(e.operand))
        if isinstance(e, EFDiv):
            return EFDiv(fix_expr(e.operand), e.divisor)
        if isinstance(e, ECDiv):
            return ECDiv(fix_expr(e.operand), e.divisor)
        if isinstance(e, EMin):
            return EMin(tuple(fix_expr(o) for o in e.operands))
        if isinstance(e, EMax):
            return EMax(tuple(fix_expr(o) for o in e.operands))
        return e

    def fix(n: Node) -> Node:
        if isinstance(n, ASeq):
            return ASeq(tuple(fix(c) for c in n.children))
        if isinstance(n, AGuard):
            return AGuard(
                tuple(fix_expr(e) for e in n.ineqs),
                tuple(fix_expr(e) for e in n.eqs),
                fix(n.body),
            )
        if isinstance(n, AFor):
            var = mapping.setdefault(n.var, _safe_name(n.var))
            return AFor(var, fix_expr(n.lower), fix_expr(n.upper), fix(n.body))
        if isinstance(n, AEmitRange):
            return AEmitRange(
                tuple(fix_expr(r) for r in n.row), fix_expr(n.lower), fix_expr(n.upper)
            )
        raise TypeError(f"unknown AST node {n!r}")

    fixed = fix(node)
    if len(set(mapping.values())) != len(mapping):
        raise PolyhedralError(f"name sanitization produced a collision: {mapping}")
    return fixed, tuple(mapping[n] for n in param_names)


def prepare_scanner(
    set_or_bset, param_names: Optional[Sequence[str]] = None
) -> Tuple[Node, Tuple[str, ...]]:
    """The scan AST and positional parameter names for a set or union.

    The shared front half of every scanner backend: the compiled source
    path sanitizes the names afterwards, while the interpreted and
    vectorized (:mod:`repro.poly.vectorize`) backends bind the returned
    names as-is — all three walk the same AST, which is what makes their
    emissions bit-identical.
    """
    node, names = _prepare(set_or_bset, param_names)
    return node, tuple(names)


def _prepare(set_or_bset, param_names: Optional[Sequence[str]]):
    if isinstance(set_or_bset, BasicSet):
        node = build_scan_ast(set_or_bset)
        space = set_or_bset.space
    elif isinstance(set_or_bset, Set):
        node = build_scan_ast_union(set_or_bset)
        space = set_or_bset.space
    else:
        raise TypeError(f"expected BasicSet or Set, got {type(set_or_bset).__name__}")
    names = tuple(param_names) if param_names is not None else space.params
    missing = set(space.params) - set(names)
    if missing:
        raise PolyhedralError(f"scanner parameters missing bindings: {sorted(missing)}")
    return node, names
