"""``repro.poly`` — a small integer set library for polyhedral compilation.

This package replaces isl (the Integer Set Library) that the paper builds on.
It implements the subset of polyhedral machinery the toolchain needs:

* :mod:`~repro.poly.space` — named dimension spaces (params / in / out),
* :mod:`~repro.poly.affine` — exact integer affine expressions,
* :mod:`~repro.poly.constraint` — affine equalities and inequalities,
* :mod:`~repro.poly.basic_set` — convex Z-polyhedra (conjunctions),
* :mod:`~repro.poly.set_` / :mod:`~repro.poly.map_` — unions and relations,
* :mod:`~repro.poly.fourier_motzkin` — projection with exactness tracking,
* :mod:`~repro.poly.bounds` — per-dimension bound extraction,
* :mod:`~repro.poly.astbuild` / :mod:`~repro.poly.codegen` — loop-nest AST
  generation and compilation to Python scanner functions (the analogue of
  isl's AST build + LLVM IR emission used in Section 6 of the paper),
* :mod:`~repro.poly.parser` / :mod:`~repro.poly.pretty` — isl-notation I/O.

All arithmetic is exact (Python integers); floating point never enters the
polyhedral layer.
"""

from repro.poly.space import Space
from repro.poly.affine import Aff
from repro.poly.constraint import Constraint
from repro.poly.basic_set import BasicSet
from repro.poly.set_ import Set
from repro.poly.map_ import BasicMap, Map
from repro.poly.parser import parse_set, parse_map, parse_basic_set, parse_basic_map
from repro.poly.pretty import set_to_str, map_to_str
from repro.poly.intervals import (
    Atom,
    atomic_decomposition,
    intersect_intervals,
    normalize_intervals,
    subtract_intervals,
    total_bytes,
    union_intervals,
)

__all__ = [
    "Atom",
    "atomic_decomposition",
    "intersect_intervals",
    "normalize_intervals",
    "subtract_intervals",
    "total_bytes",
    "union_intervals",
    "Space",
    "Aff",
    "Constraint",
    "BasicSet",
    "Set",
    "BasicMap",
    "Map",
    "parse_set",
    "parse_map",
    "parse_basic_set",
    "parse_basic_map",
    "set_to_str",
    "map_to_str",
]
