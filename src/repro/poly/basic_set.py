"""Convex Z-polyhedra: conjunctions of affine constraints over a space.

A :class:`BasicSet` is the integer-point set of a conjunction of affine
equalities and inequalities — isl's ``basic_set``. Instances are immutable;
all operations return new sets. Each set carries an ``exact`` flag that is
cleared whenever an operation may have over-approximated the true set of
integer points (see :mod:`repro.poly.fourier_motzkin`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PolyhedralError, SpaceMismatchError
from repro.poly.affine import Aff
from repro.poly.constraint import Constraint, Kind
from repro.poly.fourier_motzkin import eliminate_column, project_columns
from repro.poly.linalg import Vec, ceildiv, floordiv
from repro.poly.simplify import simplify_system
from repro.poly.space import Space

__all__ = ["BasicSet", "BoundSpec"]


class BoundSpec:
    """Bounds of one column: ``x >= ceil(-rest/a)`` / ``x <= floor(rest/|a|)``.

    ``lowers`` and ``uppers`` are lists of ``(divisor, rest_vec)`` pairs where
    ``rest_vec`` is a full-layout vector *excluding* the bounded column's own
    coefficient. For a lower bound the value is ``ceildiv(-rest, divisor)``,
    for an upper bound ``floordiv(rest, divisor)``.
    """

    __slots__ = ("col", "lowers", "uppers")

    def __init__(self, col: int) -> None:
        self.col = col
        self.lowers: List[Tuple[int, Vec]] = []
        self.uppers: List[Tuple[int, Vec]] = []

    def eval_lower(self, point: Vec) -> Optional[int]:
        """Greatest lower bound at a concrete point, or None if unbounded."""
        best: Optional[int] = None
        for div, rest in self.lowers:
            val = ceildiv(-sum(r * p for r, p in zip(rest, point)), div)
            if best is None or val > best:
                best = val
        return best

    def eval_upper(self, point: Vec) -> Optional[int]:
        """Least upper bound at a concrete point, or None if unbounded."""
        best: Optional[int] = None
        for div, rest in self.uppers:
            val = floordiv(sum(r * p for r, p in zip(rest, point)), div)
            if best is None or val < best:
                best = val
        return best


class BasicSet:
    """An immutable convex Z-polyhedron over a :class:`Space`."""

    __slots__ = ("space", "constraints", "exact", "_trivially_empty")

    def __init__(
        self,
        space: Space,
        constraints: Sequence[Constraint] = (),
        *,
        exact: bool = True,
        _presimplified: bool = False,
    ) -> None:
        self.space = space
        if _presimplified:
            self.constraints: Tuple[Constraint, ...] = tuple(constraints)
            self._trivially_empty = False
        else:
            simplified = simplify_system(constraints)
            if simplified.empty:
                # Keep the canonical contradiction so emptiness survives
                # projections, substitutions and re-simplification.
                falsum = [-1] + [0] * (space.ncols - 1)
                self.constraints = (Constraint(Kind.INEQ, tuple(falsum)),)
                self._trivially_empty = True
            else:
                self.constraints = tuple(simplified.constraints)
                self._trivially_empty = False
        self.exact = exact

    # -- constructors ------------------------------------------------------

    @staticmethod
    def universe(space: Space) -> "BasicSet":
        """The unconstrained set over ``space``."""
        return BasicSet(space, ())

    @staticmethod
    def empty(space: Space) -> "BasicSet":
        """The canonical empty set over ``space`` (encodes ``-1 >= 0``)."""
        vec = [-1] + [0] * (space.ncols - 1)
        bs = BasicSet(space, (), _presimplified=True)
        bs.constraints = (Constraint(Kind.INEQ, tuple(vec)),)
        bs._trivially_empty = True
        return bs

    @staticmethod
    def from_box(space: Space, bounds: Mapping[str, Tuple[int, int]]) -> "BasicSet":
        """Box set: for each ``name: (lo, hi)``, constrain ``lo <= name < hi``."""
        cons: List[Constraint] = []
        for name, (lo, hi) in bounds.items():
            x = Aff.var(space, name)
            cons.append(Constraint.ineq(x - lo))
            cons.append(Constraint.ineq(Aff.const(space, hi - 1) - x))
        return BasicSet(space, cons)

    # -- predicates and queries ---------------------------------------------

    def is_universe(self) -> bool:
        return not self.constraints

    def is_empty(self) -> bool:
        """Integer emptiness (sound: True means definitely empty).

        Eliminates every column (dimensions, then parameters) with
        Fourier-Motzkin / Gauss, watching for contradictions. A rationally
        empty system is integer-empty; a rationally non-empty but inexactly
        projected system is conservatively reported non-empty.
        """
        if self._trivially_empty:
            return True
        cons = list(self.constraints)
        for col in range(self.space.ncols - 1, 0, -1):
            cons, _ = eliminate_column(cons, col)
            simplified = simplify_system(cons)
            if simplified.empty:
                return True
            cons = simplified.constraints
        return False

    def contains(self, values: Mapping[str, int]) -> bool:
        """Membership test with concrete values for every dim and param."""
        point = self._point_vec(values)
        return all(c.satisfied_by(point) for c in self.constraints)

    def _point_vec(self, values: Mapping[str, int]) -> Vec:
        vec = [1]
        for name in self.space.all_names:
            if name not in values:
                raise PolyhedralError(f"missing value for {name!r} in membership test")
            vec.append(int(values[name]))
        return tuple(vec)

    def involves(self, name: str) -> bool:
        """True if any constraint has a nonzero coefficient on ``name``."""
        col = self.space.column_of(name)
        return any(c.vec[col] != 0 for c in self.constraints)

    # -- constraint combination ---------------------------------------------

    def add_constraints(self, extra: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, list(self.constraints) + list(extra), exact=self.exact)

    def add_eq(self, aff: Aff) -> "BasicSet":
        return self.add_constraints([Constraint.eq(aff.rebind(self.space))])

    def add_ineq(self, aff: Aff) -> "BasicSet":
        return self.add_constraints([Constraint.ineq(aff.rebind(self.space))])

    def _with_exact(self, exact: bool) -> "BasicSet":
        """Copy with the exactness flag replaced (internal)."""
        if exact == self.exact:
            return self
        out = BasicSet(self.space, (), exact=exact, _presimplified=True)
        out.constraints = self.constraints
        out._trivially_empty = self._trivially_empty
        return out

    def intersect(self, other: "BasicSet") -> "BasicSet":
        self.space.check_compatible(other.space)
        return BasicSet(
            self.space,
            list(self.constraints) + list(other.constraints),
            exact=self.exact and other.exact,
        )

    def subtract(self, other: "BasicSet") -> List["BasicSet"]:
        """Set difference ``self \\ other`` as a list of disjoint pieces.

        Distributes the complement of ``other``'s conjunction: for the i-th
        inequality ``e_i >= 0`` the i-th piece is ``self ∧ e_1>=0 ∧ ... ∧
        e_{i-1}>=0 ∧ e_i <= -1`` (equalities are split into two
        inequalities first), so the pieces partition the true difference.
        Integer-exact when both operands are exact; an inexact ``other``
        over-approximates, which can make the difference an
        *under*-approximation — the pieces' ``exact`` flags are cleared and
        callers needing soundness must check them.
        """
        self.space.check_compatible(other.space)
        if self._trivially_empty:
            return []
        if other._trivially_empty:
            return [self]
        ineqs: List[Vec] = []
        for c in other.constraints:
            ineqs.append(c.vec)
            if c.is_eq:
                ineqs.append(tuple(-v for v in c.vec))
        exact = self.exact and other.exact
        pieces: List[BasicSet] = []
        kept: List[Constraint] = []
        for vec in ineqs:
            # ¬(v·x >= 0)  ⟺  -v·x - 1 >= 0
            negated = (-vec[0] - 1,) + tuple(-v for v in vec[1:])
            piece = self.add_constraints(kept + [Constraint(Kind.INEQ, negated)])
            if not piece.is_empty():
                pieces.append(piece._with_exact(exact))
            kept.append(Constraint(Kind.INEQ, vec))
        return pieces

    # -- projection / substitution ------------------------------------------

    def project_out(self, names: Iterable[str]) -> "BasicSet":
        """Existentially project out the named dimensions.

        The result lives in the reduced space. The ``exact`` flag is cleared
        when the elimination may over-approximate on Z.
        """
        names = list(names)
        if not names:
            return self
        cols = [self.space.column_of(n) for n in names]
        cons, elim_exact = project_columns(self.constraints, cols)
        new_space = self.space.drop_dims(names)
        compacted = _compact(cons, sorted(cols))
        return BasicSet(new_space, compacted, exact=self.exact and elim_exact)

    def project_out_params(self, names: Iterable[str]) -> "BasicSet":
        """Existentially project out the named parameters."""
        names = list(names)
        if not names:
            return self
        cols = [self.space.column_of(n) for n in names]
        cons, elim_exact = project_columns(self.constraints, cols)
        new_space = self.space.drop_params(names)
        compacted = _compact(cons, sorted(cols))
        return BasicSet(new_space, compacted, exact=self.exact and elim_exact)

    def fix(self, name: str, value: int) -> "BasicSet":
        """Substitute a concrete value for a dim/param; drops the dimension."""
        return self.substitute(name, Aff.const(self.space, int(value)))

    def substitute(self, name: str, aff: Aff) -> "BasicSet":
        """Replace ``name`` by the affine expression ``aff`` (then drop it).

        ``aff`` must not itself involve ``name``.
        """
        aff = aff.rebind(self.space)
        if aff.involves(name):
            raise PolyhedralError(f"substitution for {name!r} involves itself")
        col = self.space.column_of(name)
        cons: List[Constraint] = []
        for c in self.constraints:
            k = c.vec[col]
            if k == 0:
                cons.append(c)
                continue
            vec = tuple(
                v + k * a for v, a in zip(_zeroed(c.vec, col), aff.vec)
            )
            cons.append(Constraint(c.kind, vec))
        if name in self.space.params:
            new_space = self.space.drop_params([name])
        else:
            new_space = self.space.drop_dims([name])
        return BasicSet(new_space, _compact(cons, [col]), exact=self.exact)

    def rename(self, mapping: Dict[str, str]) -> "BasicSet":
        """Rename dimensions/parameters (columns are unchanged)."""
        bs = BasicSet(self.space.rename(mapping), (), exact=self.exact, _presimplified=True)
        bs.constraints = self.constraints
        bs._trivially_empty = self._trivially_empty
        return bs

    def align(self, space: Space) -> "BasicSet":
        """Re-express this set in a superspace containing all its names."""
        cons = [_rebind_constraint(c, self.space, space) for c in self.constraints]
        return BasicSet(space, cons, exact=self.exact)

    # -- bounds and enumeration ----------------------------------------------

    def dim_bounds(self, name: str) -> BoundSpec:
        """Bound descriptors for one dimension from the *current* constraints.

        The caller is responsible for having eliminated any later dimensions
        (see :mod:`repro.poly.astbuild`); constraints mentioning other
        dimensions simply contribute bounds that depend on them.
        """
        col = self.space.column_of(name)
        spec = BoundSpec(col)
        for c in self.constraints:
            a = c.vec[col]
            if a == 0:
                continue
            rest = _zeroed(c.vec, col)
            if c.is_eq:
                if a > 0:
                    spec.lowers.append((a, rest))
                    spec.uppers.append((a, tuple(-r for r in rest)))
                else:
                    spec.lowers.append((-a, tuple(-r for r in rest)))
                    spec.uppers.append((-a, rest))
            elif a > 0:
                # a*x + rest >= 0  =>  x >= ceil(-rest / a)
                spec.lowers.append((a, rest))
            else:
                # a*x + rest >= 0, a < 0  =>  x <= floor(rest / |a|)
                spec.uppers.append((-a, rest))
        return spec

    def enumerate_points(self, max_points: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        """Yield every integer point of a bounded, parameter-free set.

        Used by tests and by the interpreted (non-codegen) scanner fallback.
        Raises :class:`PolyhedralError` if the set has parameters or is
        unbounded in some dimension.
        """
        if self.space.n_params:
            raise PolyhedralError("cannot enumerate a parametric set; fix the parameters first")
        yield from _enumerate(self, [], max_points=[max_points])

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasicSet):
            return NotImplemented
        return self.space == other.space and set(self.constraints) == set(other.constraints)

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.constraints)))

    def __repr__(self) -> str:
        from repro.poly.pretty import basic_set_to_str

        return basic_set_to_str(self)


def _zeroed(vec: Vec, col: int) -> Vec:
    return vec[:col] + (0,) + vec[col + 1 :]


def _compact(constraints: Sequence[Constraint], removed_cols: Sequence[int]) -> List[Constraint]:
    """Delete columns (which must be all-zero) from every constraint vector."""
    removed = sorted(removed_cols, reverse=True)
    out: List[Constraint] = []
    for c in constraints:
        vec = list(c.vec)
        for col in removed:
            if vec[col] != 0:
                raise PolyhedralError("internal error: compacting a live column")
            del vec[col]
        out.append(Constraint(c.kind, tuple(vec)))
    return out


def _rebind_constraint(c: Constraint, src: Space, dst: Space) -> Constraint:
    vec = [0] * dst.ncols
    vec[0] = c.vec[0]
    for i, name in enumerate(src.all_names):
        coeff = c.vec[i + 1]
        if coeff:
            vec[dst.column_of(name)] += coeff
    return Constraint(c.kind, tuple(vec))


def _enumerate(
    bset: BasicSet, prefix: List[int], *, max_points: List[int]
) -> Iterator[Tuple[int, ...]]:
    if bset._trivially_empty:
        return
    dims = bset.space.all_names
    if not dims:
        simplified = simplify_system(bset.constraints)
        if not simplified.empty:
            max_points[0] -= 1
            if max_points[0] < 0:
                raise PolyhedralError("enumerate_points: too many points")
            yield tuple(prefix)
        return
    first = dims[0]
    rest = dims[1:]
    # Bounds on `first` come from the set with the later dims projected out.
    shadow = bset.project_out(rest) if rest else bset
    if shadow._trivially_empty:
        return
    spec = shadow.dim_bounds(first)
    point = (1,) + (0,) * (shadow.space.ncols - 1)
    lo = spec.eval_lower(point)
    hi = spec.eval_upper(point)
    if lo is None or hi is None:
        raise PolyhedralError(f"enumerate_points: dimension {first!r} is unbounded")
    for v in range(lo, hi + 1):
        sub = bset.fix(first, v)
        yield from _enumerate(sub, prefix + [v], max_points=max_points)
