"""Unions of convex Z-polyhedra (isl's ``set``).

A :class:`Set` is a finite union of :class:`~repro.poly.basic_set.BasicSet`
disjuncts sharing one space. Most operations distribute over the disjuncts.
The paper's code generator (Section 6.1) scans each convex piece of a union
separately to avoid over-approximation, which is why the disjunct structure
is preserved rather than hulled.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import SpaceMismatchError
from repro.poly.basic_set import BasicSet
from repro.poly.space import Space

__all__ = ["Set"]


class Set:
    """A union of :class:`BasicSet` disjuncts over a common space."""

    __slots__ = ("space", "disjuncts")

    def __init__(self, space: Space, disjuncts: Sequence[BasicSet] = ()) -> None:
        self.space = space
        kept: List[BasicSet] = []
        seen = set()
        for d in disjuncts:
            space.check_compatible(d.space)
            if d._trivially_empty:
                continue
            key = (frozenset(d.constraints), d.exact)
            if key in seen:
                continue
            seen.add(key)
            kept.append(d)
        self.disjuncts: Tuple[BasicSet, ...] = tuple(kept)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_basic(bset: BasicSet) -> "Set":
        return Set(bset.space, [bset])

    @staticmethod
    def empty(space: Space) -> "Set":
        return Set(space, [])

    @staticmethod
    def universe(space: Space) -> "Set":
        return Set(space, [BasicSet.universe(space)])

    # -- queries -----------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True when every disjunct is exact."""
        return all(d.exact for d in self.disjuncts)

    @property
    def n_basic_sets(self) -> int:
        return len(self.disjuncts)

    def is_empty(self) -> bool:
        return all(d.is_empty() for d in self.disjuncts)

    def contains(self, values: Mapping[str, int]) -> bool:
        return any(d.contains(values) for d in self.disjuncts)

    # -- operations ---------------------------------------------------------

    def union(self, other: "Set") -> "Set":
        self.space.check_compatible(other.space)
        return Set(self.space, list(self.disjuncts) + list(other.disjuncts))

    def intersect(self, other: "Set") -> "Set":
        self.space.check_compatible(other.space)
        out = [a.intersect(b) for a in self.disjuncts for b in other.disjuncts]
        return Set(self.space, out)

    def intersect_basic(self, bset: BasicSet) -> "Set":
        return Set(self.space, [d.intersect(bset) for d in self.disjuncts])

    def subtract(self, other: "Set") -> "Set":
        """Set difference: subtract every disjunct of ``other`` in turn."""
        self.space.check_compatible(other.space)
        remaining = list(self.disjuncts)
        for sub in other.disjuncts:
            remaining = [p for d in remaining for p in d.subtract(sub)]
        return Set(self.space, remaining)

    def project_out(self, names: Iterable[str]) -> "Set":
        names = list(names)
        out = [d.project_out(names) for d in self.disjuncts]
        space = out[0].space if out else self.space.drop_dims(names)
        return Set(space, out)

    def fix(self, name: str, value: int) -> "Set":
        out = [d.fix(name, value) for d in self.disjuncts]
        space = out[0].space if out else self.space.drop_dims([name]) if name in (
            self.space.in_dims + self.space.out_dims
        ) else self.space.drop_params([name])
        return Set(space, out)

    def rename(self, mapping) -> "Set":
        out = [d.rename(mapping) for d in self.disjuncts]
        return Set(self.space.rename(mapping), out)

    def coalesce(self) -> "Set":
        """Drop disjuncts that are (detectably) empty.

        This is deliberately cheaper than isl's coalescing: exactly-redundant
        disjuncts were already deduplicated at construction.
        """
        return Set(self.space, [d for d in self.disjuncts if not d.is_empty()])

    def enumerate_points(self, max_points: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        """All integer points of a bounded, parameter-free union (deduped)."""
        seen = set()
        for d in self.disjuncts:
            for p in d.enumerate_points(max_points):
                if p not in seen:
                    seen.add(p)
                    yield p

    def __eq__(self, other: object) -> bool:
        """Semantic equality via mutual emptiness of differences is costly;
        this compares disjunct structure only (sufficient for tests)."""
        if not isinstance(other, Set):
            return NotImplemented
        return self.space == other.space and set(self.disjuncts) == set(other.disjuncts)

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.disjuncts)))

    def __iter__(self) -> Iterator[BasicSet]:
        return iter(self.disjuncts)

    def __repr__(self) -> str:
        from repro.poly.pretty import set_to_str

        return set_to_str(self)
