"""Constraint-system simplification.

Removes duplicate and trivially redundant constraints, detects trivial
contradictions, promotes opposed inequality pairs to equalities, and brings
the equalities into a (deterministic) echelon form. This keeps
Fourier-Motzkin from drowning in derived constraints and gives sets a
canonical-enough form for printing and hashing.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.poly.constraint import Constraint, Kind
from repro.poly.fourier_motzkin import _substitute
from repro.poly.linalg import Vec, vec_is_zero, vec_neg

__all__ = ["simplify_system", "SimplifiedSystem"]


class SimplifiedSystem:
    """Result of :func:`simplify_system`.

    Attributes:
        constraints: the simplified constraint list (eqs first).
        empty: True when a contradiction was detected (the set is empty).
    """

    __slots__ = ("constraints", "empty")

    def __init__(self, constraints: List[Constraint], empty: bool):
        self.constraints = constraints
        self.empty = empty

    @staticmethod
    def empty_system() -> "SimplifiedSystem":
        return SimplifiedSystem([], True)


def _echelon(eqs: List[Constraint]) -> Tuple[List[Constraint], bool]:
    """Gauss-reduce equalities among themselves; returns (eqs, contradiction)."""
    eqs = list(eqs)
    reduced: List[Constraint] = []
    ncols = len(eqs[0].vec) if eqs else 0
    for col in range(ncols - 1, 0, -1):
        pivot_idx: Optional[int] = None
        for i, eq in enumerate(eqs):
            if eq.vec[col] != 0 and (
                pivot_idx is None or abs(eq.vec[col]) < abs(eqs[pivot_idx].vec[col])
            ):
                pivot_idx = i
                if abs(eq.vec[col]) == 1:
                    break
        if pivot_idx is None:
            continue
        pivot = eqs.pop(pivot_idx)
        eqs = [_substitute(e, pivot, col) for e in eqs]
        reduced = [_substitute(e, pivot, col) for e in reduced]
        reduced.append(pivot)
    # Remaining eqs involve only the constant column.
    for eq in eqs:
        if eq.is_contradiction():
            return reduced, True
    for eq in reduced:
        if eq.is_contradiction():
            return reduced, True
        # Integer infeasibility: g * (...) + c == 0 with g not dividing c.
        g = 0
        for v in eq.vec[1:]:
            g = gcd(g, abs(v))
        if g > 1 and eq.vec[0] % g != 0:
            return reduced, True
    return list(reversed(reduced)), False


def simplify_system(constraints: Sequence[Constraint]) -> SimplifiedSystem:
    """Simplify a constraint system; detect trivial emptiness."""
    eqs: List[Constraint] = []
    ineq_by_coeffs: Dict[Vec, int] = {}  # nonconst coeffs -> strongest const

    def add_ineq(vec: Vec) -> None:
        key = vec[1:]
        cur = ineq_by_coeffs.get(key)
        if cur is None or vec[0] < cur:
            ineq_by_coeffs[key] = vec[0]

    for c in constraints:
        if c.is_tautology():
            continue
        if c.is_contradiction():
            return SimplifiedSystem.empty_system()
        if c.is_eq:
            eqs.append(c)
        else:
            add_ineq(c.vec)

    # Opposed inequality pairs: v + c1 >= 0 and -v + c2 >= 0.
    promoted: List[Constraint] = []
    seen: set = set()
    for key, const in list(ineq_by_coeffs.items()):
        if key in seen:
            continue
        neg_key = vec_neg(key)
        if neg_key in ineq_by_coeffs:
            other = ineq_by_coeffs[neg_key]
            total = const + other
            if total < 0:
                return SimplifiedSystem.empty_system()
            if total == 0:
                promoted.append(Constraint(Kind.EQ, (const,) + tuple(key)))
                seen.add(key)
                seen.add(neg_key)
    for key in seen:
        ineq_by_coeffs.pop(key, None)
    eqs.extend(promoted)

    if eqs:
        eqs, contradiction = _echelon(eqs)
        if contradiction:
            return SimplifiedSystem.empty_system()
        # Substitute the echelon equalities into the inequalities for a
        # tighter, more canonical system.
        new_ineqs: Dict[Vec, int] = {}
        for key, const in ineq_by_coeffs.items():
            c = Constraint(Kind.INEQ, (const,) + tuple(key))
            for eq in eqs:
                lead = _leading_col(eq.vec)
                if lead is not None and c.vec[lead] != 0:
                    c = _substitute(c, eq, lead)
            if c.is_contradiction():
                return SimplifiedSystem.empty_system()
            if not c.is_tautology():
                k = c.vec[1:]
                cur = new_ineqs.get(k)
                if cur is None or c.vec[0] < cur:
                    new_ineqs[k] = c.vec[0]
        ineq_by_coeffs = new_ineqs
        # Opposed pairs introduced by the substitution: contradictions end
        # it; exact pairs promote to new equalities, which may expose
        # further (e.g. divisibility) contradictions — iterate to fixpoint.
        for key, const in ineq_by_coeffs.items():
            neg_key = vec_neg(key)
            if neg_key in ineq_by_coeffs:
                total = const + ineq_by_coeffs[neg_key]
                if total < 0:
                    return SimplifiedSystem.empty_system()
                if total == 0:
                    rerun = list(eqs)
                    rerun.extend(
                        Constraint(Kind.INEQ, (c,) + tuple(k))
                        for k, c in ineq_by_coeffs.items()
                    )
                    return simplify_system(rerun)

    out = list(eqs)
    out.extend(
        Constraint(Kind.INEQ, (const,) + tuple(key))
        for key, const in sorted(ineq_by_coeffs.items(), key=lambda kv: (kv[0], kv[1]))
    )
    return SimplifiedSystem(out, False)


def _leading_col(vec: Vec) -> Optional[int]:
    """Highest nonzero column of a vector (None for constant vectors)."""
    for col in range(len(vec) - 1, 0, -1):
        if vec[col] != 0:
            return col
    return None
