"""Exact integer affine expressions bound to a :class:`~repro.poly.space.Space`.

An :class:`Aff` is the value ``vec[0] + sum(vec[i] * name_i)`` where the
vector follows the space's column layout. Affine expressions support exact
integer arithmetic; multiplying two non-constant expressions raises
:class:`~repro.errors.NonAffineError`, which is precisely how the compiler's
access analysis detects non-affine subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

from repro.errors import NonAffineError, SpaceMismatchError
from repro.poly.linalg import Vec, vec_add, vec_neg, vec_scale, vec_sub
from repro.poly.space import Space

__all__ = ["Aff"]

IntLike = Union[int, "Aff"]


@dataclass(frozen=True)
class Aff:
    """An affine expression ``c0 + sum(c_i * x_i)`` over a space."""

    space: Space
    vec: Vec

    def __post_init__(self) -> None:
        if len(self.vec) != self.space.ncols:
            raise SpaceMismatchError(
                f"affine vector has {len(self.vec)} columns, space needs {self.space.ncols}"
            )
        object.__setattr__(self, "vec", tuple(int(v) for v in self.vec))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(space: Space, value: int) -> "Aff":
        """The constant expression ``value``."""
        vec = [0] * space.ncols
        vec[0] = int(value)
        return Aff(space, tuple(vec))

    @staticmethod
    def var(space: Space, name: str) -> "Aff":
        """The expression referencing a single dimension or parameter."""
        vec = [0] * space.ncols
        vec[space.column_of(name)] = 1
        return Aff(space, tuple(vec))

    @staticmethod
    def from_terms(space: Space, terms: Mapping[str, int], const: int = 0) -> "Aff":
        """Build ``const + sum(coeff * name)`` from a name->coefficient map."""
        vec = [0] * space.ncols
        vec[0] = int(const)
        for name, coeff in terms.items():
            vec[space.column_of(name)] += int(coeff)
        return Aff(space, tuple(vec))

    # -- queries -----------------------------------------------------------

    @property
    def const_term(self) -> int:
        return self.vec[0]

    def coeff(self, name: str) -> int:
        """Coefficient of a named dimension or parameter."""
        return self.vec[self.space.column_of(name)]

    def is_constant(self) -> bool:
        """True when no dimension or parameter has a nonzero coefficient."""
        return all(v == 0 for v in self.vec[1:])

    def terms(self) -> Dict[str, int]:
        """Nonzero name->coefficient pairs (excluding the constant)."""
        return {
            name: self.vec[i + 1]
            for i, name in enumerate(self.space.all_names)
            if self.vec[i + 1] != 0
        }

    def involves(self, name: str) -> bool:
        return self.coeff(name) != 0

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other: IntLike) -> "Aff":
        if isinstance(other, Aff):
            self.space.check_compatible(other.space)
            return other
        if isinstance(other, int):
            return Aff.const(self.space, other)
        raise TypeError(f"cannot combine Aff with {type(other).__name__}")

    def __add__(self, other: IntLike) -> "Aff":
        other = self._coerce(other)
        return Aff(self.space, vec_add(self.vec, other.vec))

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "Aff":
        other = self._coerce(other)
        return Aff(self.space, vec_sub(self.vec, other.vec))

    def __rsub__(self, other: IntLike) -> "Aff":
        other = self._coerce(other)
        return Aff(self.space, vec_sub(other.vec, self.vec))

    def __neg__(self) -> "Aff":
        return Aff(self.space, vec_neg(self.vec))

    def __mul__(self, other: IntLike) -> "Aff":
        if isinstance(other, Aff):
            if other.is_constant():
                other = other.const_term
            elif self.is_constant():
                return other * self.const_term
            else:
                raise NonAffineError(
                    f"product of two non-constant affine expressions: ({self}) * ({other})"
                )
        return Aff(self.space, vec_scale(self.vec, int(other)))

    __rmul__ = __mul__

    # -- evaluation / rebinding --------------------------------------------

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Evaluate with concrete integer values for every involved name."""
        total = self.vec[0]
        for i, name in enumerate(self.space.all_names):
            c = self.vec[i + 1]
            if c != 0:
                total += c * values[name]
        return total

    def rebind(self, space: Space) -> "Aff":
        """Re-express this Aff in another space containing all involved names."""
        terms = self.terms()
        return Aff.from_terms(space, terms, self.const_term)

    def __str__(self) -> str:
        parts = []
        for i, name in enumerate(self.space.all_names):
            c = self.vec[i + 1]
            if c == 0:
                continue
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}{name}")
        if self.vec[0] != 0 or not parts:
            parts.append(str(self.vec[0]))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")
