"""Affine constraints (equalities and inequalities) over a space.

A constraint stores an integer vector ``v`` in the space's column layout and
a kind: ``EQ`` means ``v . [1, names...] == 0`` and ``INEQ`` means
``v . [1, names...] >= 0``. Constraints are normalized on construction:
coefficients are divided by their GCD (with the correct integer tightening of
the constant for inequalities) and equalities get a canonical sign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.poly.affine import Aff
from repro.poly.linalg import Vec, vec_dot, vec_gcd, vec_is_zero, vec_neg
from repro.poly.space import Space

__all__ = ["Kind", "Constraint"]


class Kind(enum.Enum):
    """Constraint kind: equality (== 0) or inequality (>= 0)."""

    EQ = "eq"
    INEQ = "ineq"


@dataclass(frozen=True)
class Constraint:
    """A normalized affine constraint over ``space``."""

    kind: Kind
    vec: Vec

    def __post_init__(self) -> None:
        vec = tuple(int(v) for v in self.vec)
        vec = _normalize(self.kind, vec)
        object.__setattr__(self, "vec", vec)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def eq(aff: Aff) -> "Constraint":
        """The constraint ``aff == 0``."""
        return Constraint(Kind.EQ, aff.vec)

    @staticmethod
    def ineq(aff: Aff) -> "Constraint":
        """The constraint ``aff >= 0``."""
        return Constraint(Kind.INEQ, aff.vec)

    @staticmethod
    def eq_terms(space: Space, terms: Mapping[str, int], const: int = 0) -> "Constraint":
        return Constraint.eq(Aff.from_terms(space, terms, const))

    @staticmethod
    def ineq_terms(space: Space, terms: Mapping[str, int], const: int = 0) -> "Constraint":
        return Constraint.ineq(Aff.from_terms(space, terms, const))

    # -- queries -----------------------------------------------------------

    @property
    def is_eq(self) -> bool:
        return self.kind is Kind.EQ

    @property
    def const_term(self) -> int:
        return self.vec[0]

    def coeff(self, col: int) -> int:
        return self.vec[col]

    def is_tautology(self) -> bool:
        """True for ``0 == 0`` or ``c >= 0`` with ``c >= 0``."""
        if not vec_is_zero(self.vec[1:]):
            return False
        if self.is_eq:
            return self.vec[0] == 0
        return self.vec[0] >= 0

    def is_contradiction(self) -> bool:
        """True for ``c == 0`` with ``c != 0`` or ``c >= 0`` with ``c < 0``."""
        if not vec_is_zero(self.vec[1:]):
            return False
        if self.is_eq:
            return self.vec[0] != 0
        return self.vec[0] < 0

    def satisfied_by(self, point: Vec) -> bool:
        """Evaluate against ``[1, values...]`` in column layout."""
        value = vec_dot(self.vec, point)
        return value == 0 if self.is_eq else value >= 0

    def negated(self) -> "Constraint":
        """For an inequality ``e >= 0``, its integer complement ``-e - 1 >= 0``.

        (The complement of ``e >= 0`` over the integers is ``e <= -1``.)
        """
        if self.is_eq:
            raise ValueError("cannot negate an equality into a single constraint")
        vec = list(vec_neg(self.vec))
        vec[0] -= 1
        return Constraint(Kind.INEQ, tuple(vec))

    def __str__(self) -> str:
        op = "=" if self.is_eq else ">="
        return f"{_vec_str(self.vec)} {op} 0"


def _normalize(kind: Kind, vec: Vec) -> Vec:
    """Canonicalize a raw constraint vector."""
    g = vec_gcd(vec[1:])
    if g > 1:
        if kind is Kind.INEQ:
            # Tighten: floor-divide the constant (keeps all integer points).
            vec = (vec[0] // g,) + tuple(v // g for v in vec[1:])
        elif all(v % g == 0 for v in vec):
            vec = tuple(v // g for v in vec)
        # else: equality with non-divisible constant; left as-is, the
        # emptiness check will detect the contradiction.
    if kind is Kind.EQ:
        # Canonical sign: first nonzero coefficient positive.
        for v in vec[1:]:
            if v > 0:
                break
            if v < 0:
                vec = vec_neg(vec)
                break
        else:
            if vec[0] < 0:
                vec = vec_neg(vec)
    return vec


def _vec_str(vec: Vec) -> str:
    parts = []
    for i, v in enumerate(vec):
        if v == 0:
            continue
        name = "1" if i == 0 else f"c{i}"
        parts.append(f"{v}*{name}")
    return " + ".join(parts) if parts else "0"
