"""A recursive-descent parser for (a useful subset of) isl notation.

Supported syntax::

    [n, m] -> { [y, x] : 0 <= y <= x and x < n }
    { [y, x] -> [y + 1, x + 3] }
    { [i] : 0 <= i < 10 ; [i] : 20 <= i < 30 }      # unions via ';'

Output tuples of maps may contain affine expressions (as in Figure 1 of the
paper); fresh output dimension names ``o0, o1, ...`` are invented and bound
via equalities. Comparison chains (``0 <= y <= x``) expand to conjunctions;
``<`` and ``>`` are integer-strict.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.errors import NonAffineError, ParseError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet
from repro.poly.constraint import Constraint
from repro.poly.map_ import BasicMap, Map
from repro.poly.set_ import Set
from repro.poly.space import Space

__all__ = ["parse_set", "parse_map", "parse_basic_set", "parse_basic_map"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9.]*)"
    r"|(?P<op>->|<=|>=|=|<|>|[\[\]{}(),:;+\-*]))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ParseError(f"unexpected character at {text[pos:pos + 10]!r}")
            break
        tokens.append(m.group(m.lastgroup))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0
        self.space: Optional[Space] = None

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r}")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse(self, *, want_map: bool) -> Tuple[Space, List[List[Constraint]]]:
        params: Tuple[str, ...] = ()
        if self.peek() == "[":
            params = tuple(self._name_list())
            self.expect("->")
        self.expect("{")
        if self.peek() == "}":  # empty set "{ }"
            self.next()
            space = (
                Space.map_space((), (), params) if want_map else Space.set_space((), params)
            )
            self.space = space
            return space, []
        disjuncts: List[List[Constraint]] = []
        space: Optional[Space] = None
        while True:
            dspace, cons = self._disjunct(params, want_map)
            if space is None:
                space = dspace
                self.space = space
            elif space != dspace:
                raise ParseError(f"disjunct space mismatch: {space} vs {dspace}")
            disjuncts.append(cons)
            if self.accept(";"):
                continue
            break
        self.expect("}")
        if self.peek() is not None:
            raise ParseError(f"trailing input at {self.peek()!r}")
        assert space is not None
        return space, disjuncts

    def _name_list(self) -> List[str]:
        self.expect("[")
        names: List[str] = []
        if self.peek() != "]":
            while True:
                names.append(self.next())
                if not self.accept(","):
                    break
        self.expect("]")
        return names

    def _disjunct(self, params: Tuple[str, ...], want_map: bool):
        in_names = self._name_list()
        out_exprs: Optional[List] = None
        if self.accept("->"):
            out_exprs = self._expr_tuple_raw()
        elif want_map:
            raise ParseError("expected a map ('->' after the input tuple)")

        extra_cons: List[Constraint] = []
        if out_exprs is None:
            space = Space.set_space(in_names, params)
        else:
            # Each output element is either a fresh plain name or an affine
            # expression over inputs; expressions bind fresh names o0, o1, ...
            out_names: List[str] = []
            exprs: List[Optional[List[str]]] = []
            for i, raw in enumerate(out_exprs):
                if len(raw) == 1 and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9.]*", raw[0]) and raw[
                    0
                ] not in in_names and raw[0] not in params:
                    out_names.append(raw[0])
                    exprs.append(None)
                else:
                    out_names.append(f"o{i}")
                    exprs.append(raw)
            space = Space.map_space(in_names, out_names, params)
            for name, raw in zip(out_names, exprs):
                if raw is not None:
                    aff = _eval_tokens(raw, space)
                    extra_cons.append(Constraint.eq(Aff.var(space, name) - aff))
        self.space = space

        cons = list(extra_cons)
        if self.accept(":"):
            cons.extend(self._conditions(space))
        return space, cons

    def _expr_tuple_raw(self) -> List[List[str]]:
        """Collect the raw tokens of each element of a '[...]' tuple."""
        self.expect("[")
        elements: List[List[str]] = []
        if self.peek() != "]":
            current: List[str] = []
            depth = 0
            while True:
                tok = self.peek()
                if tok is None:
                    raise ParseError("unterminated tuple")
                if tok == "(":
                    depth += 1
                elif tok == ")":
                    depth -= 1
                elif depth == 0 and tok in (",", "]"):
                    elements.append(current)
                    current = []
                    self.next()
                    if tok == "]":
                        return elements
                    continue
                current.append(self.next())
        self.expect("]")
        return elements

    def _conditions(self, space: Space) -> List[Constraint]:
        cons: List[Constraint] = []
        while True:
            cons.extend(self._comparison_chain(space))
            if not self.accept("and"):
                break
        return cons

    def _comparison_chain(self, space: Space) -> List[Constraint]:
        exprs = [self._expr(space)]
        ops: List[str] = []
        while self.peek() in ("<=", "<", ">=", ">", "="):
            ops.append(self.next())
            exprs.append(self._expr(space))
        if not ops:
            raise ParseError("expected a comparison")
        cons: List[Constraint] = []
        for lhs, op, rhs in zip(exprs, ops, exprs[1:]):
            if op == "=":
                cons.append(Constraint.eq(lhs - rhs))
            elif op == "<=":
                cons.append(Constraint.ineq(rhs - lhs))
            elif op == "<":
                cons.append(Constraint.ineq(rhs - lhs - 1))
            elif op == ">=":
                cons.append(Constraint.ineq(lhs - rhs))
            else:  # ">"
                cons.append(Constraint.ineq(lhs - rhs - 1))
        return cons

    # -- affine expressions --------------------------------------------------

    def _expr(self, space: Space) -> Aff:
        aff = self._term(space)
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self._term(space)
            aff = aff + rhs if op == "+" else aff - rhs
        return aff

    def _term(self, space: Space) -> Aff:
        aff = self._factor(space)
        while self.peek() == "*":
            self.next()
            rhs = self._factor(space)
            aff = aff * rhs  # NonAffineError if both symbolic
        return aff

    def _factor(self, space: Space) -> Aff:
        tok = self.next()
        if tok == "-":
            return -self._factor(space)
        if tok == "(":
            aff = self._expr(space)
            self.expect(")")
            return aff
        if tok.isdigit():
            return Aff.const(space, int(tok))
        if space.has(tok):
            return Aff.var(space, tok)
        raise ParseError(f"unknown name {tok!r} (declare parameters as '[p] -> ...')")


def _eval_tokens(tokens: Sequence[str], space: Space) -> Aff:
    sub = _Parser.__new__(_Parser)
    sub.tokens = list(tokens)
    sub.pos = 0
    sub.space = space
    aff = sub._expr(space)
    if sub.peek() is not None:
        raise ParseError(f"trailing tokens in tuple expression: {tokens}")
    return aff


def parse_basic_set(text: str) -> BasicSet:
    """Parse a single-disjunct set; raises :class:`ParseError` on unions."""
    space, disjuncts = _Parser(text).parse(want_map=False)
    if len(disjuncts) != 1:
        raise ParseError(f"expected exactly one disjunct, got {len(disjuncts)}")
    return BasicSet(space, disjuncts[0])


def parse_set(text: str) -> Set:
    """Parse a set (possibly a union, possibly empty)."""
    space, disjuncts = _Parser(text).parse(want_map=False)
    return Set(space, [BasicSet(space, cons) for cons in disjuncts])


def parse_basic_map(text: str) -> BasicMap:
    """Parse a single-disjunct map."""
    space, disjuncts = _Parser(text).parse(want_map=True)
    if len(disjuncts) != 1:
        raise ParseError(f"expected exactly one disjunct, got {len(disjuncts)}")
    return BasicMap(space, disjuncts[0])


def parse_map(text: str) -> Map:
    """Parse a map (possibly a union, possibly empty)."""
    space, disjuncts = _Parser(text).parse(want_map=True)
    return Map(space, [BasicMap(space, cons) for cons in disjuncts])
