"""Shared constants with no intra-package dependencies."""

#: Sentinel "device id" representing host memory in transfer bookkeeping.
HOST = -1

__all__ = ["HOST"]
