"""Machine specification: devices, interconnect, and host-side costs.

The defaults model the paper's testbed class (Kepler K80s behind PCIe 3.0 in
a dual-socket Supermicro host; Section 9) and are the calibration surface
for the benchmark harness. Absolute values are documented estimates — the
reproduction targets the *shape* of the paper's results, so what matters is
the ratio between compute throughput, interconnect bandwidth, and per-call
host overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import CalibrationError

__all__ = ["Route", "MachineSpec"]


@dataclass(frozen=True)
class Route:
    """How one copy travels through the machine.

    ``host`` endpoints and direct peer-to-peer copies bypass staging; a
    device-to-device copy without P2P is staged through host memory, which
    inflates its byte count on the lanes (``lane_factor``), occupies the
    shared host bus for ``bus_factor`` times the payload, and pays the
    two-hop staging setup latency.

    A ``network`` route (cluster topologies, :mod:`repro.cluster`) adds a
    network hop: device -> host -> NIC -> fabric -> NIC -> host -> device.
    The payload crosses each endpoint's host bus (``bus_factor`` per side)
    and the NIC/fabric tier ``net_factor`` times.
    """

    kind: str  # "host" | "p2p" | "staged" | "network"
    lane_factor: float
    bus_factor: float
    extra_latency: float
    #: Byte inflation on the NIC/fabric tier; zero for intra-node routes.
    net_factor: float = 0.0

    @property
    def staged(self) -> bool:
        return self.kind == "staged"

    @property
    def network(self) -> bool:
        return self.kind == "network"


@dataclass(frozen=True)
class MachineSpec:
    """Calibration constants for the simulated multi-GPU node."""

    n_gpus: int = 16
    #: Sustained per-GPU arithmetic throughput (FLOP/s). A K80 GPU (one GK210
    #: die) sustains roughly 2.8 TFLOP/s single precision at boost.
    flops_per_gpu: float = 2.4e12
    #: Sustained per-GPU global-memory bandwidth (B/s); K80: ~240 GB/s peak,
    #: ~170 GB/s sustained.
    mem_bw_per_gpu: float = 1.7e11
    #: Practical PCIe 3.0 x16 bandwidth per device lane (B/s).
    pcie_bw: float = 1.0e10
    #: Aggregate host-memory staging bandwidth shared by all concurrent
    #: transfers (dual-socket node; staged device-to-device traffic crosses
    #: it twice via the staging factor).
    host_bus_bw: float = 1.2e10
    #: One-way transfer setup latency (s).
    pcie_latency: float = 12e-6
    #: Extra per-copy setup paid by staged device-to-device copies on the
    #: host bus (two DMA hops, two contexts, event synchronization).
    staging_latency: float = 120e-6
    #: Whether peer-to-peer DMA is available between all device pairs. The
    #: paper's testbed spans two sockets, so cross-board copies are staged
    #: through host memory; modelled as a bandwidth inflation factor below.
    p2p_enabled: bool = False
    #: Effective byte inflation for device-to-device copies without P2P
    #: (device -> host -> device moves the bytes twice).
    staging_factor: float = 2.0
    #: Effective reuse of global-memory loads issued inside loops (models
    #: shared-memory tiling / L2 hits of the paper's tiled kernels; loads in
    #: straight-line code — e.g. stencils — pay full traffic).
    cache_reuse_factor: float = 64.0
    #: Host-side cost of issuing an asynchronous CUDA call (launch, memcpy).
    issue_overhead: float = 6e-6
    #: Fixed cost of one generated-enumerator invocation (function call,
    #: argument marshalling).
    enumerator_call_cost: float = 1.5e-6
    #: Cost per element range emitted by an enumerator (callback + interval
    #: arithmetic in the runtime).
    per_range_cost: float = 0.25e-6
    #: Cost per segment-tracker query or update (one B-tree operation).
    tracker_op_cost: float = 0.35e-6
    #: Fixed host cost for each kernel-launch replacement iteration
    #: (partition computation, argument rewriting; Figure 4's loop bodies).
    partition_setup_cost: float = 2.0e-6
    #: Host cost of a device synchronization call.
    sync_overhead: float = 8e-6

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise CalibrationError("machine needs at least one GPU")
        for name in (
            "flops_per_gpu",
            "mem_bw_per_gpu",
            "pcie_bw",
            "host_bus_bw",
            "staging_factor",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        for name in ("pcie_latency", "staging_latency", "issue_overhead", "sync_overhead"):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be non-negative")

    def with_gpus(self, n: int) -> "MachineSpec":
        """The same machine limited/extended to ``n`` GPUs."""
        return replace(self, n_gpus=n)

    def route(self, src: int, dst: int, *, p2p: Optional[bool] = None) -> Route:
        """The route one copy takes between two endpoints.

        ``src``/``dst`` are device ids, or ``HOST`` (-1) for host memory.
        ``p2p`` overrides the machine-wide ``p2p_enabled`` flag for this copy
        (the scheduler's ``overlap+p2p`` policy enables peer access the way
        ``cudaDeviceEnablePeerAccess`` would, without recalibrating the spec).
        """
        if src < 0 or dst < 0:
            return Route("host", 1.0, 1.0, 0.0)
        use_p2p = self.p2p_enabled if p2p is None else p2p
        if use_p2p:
            # Direct DMA between the peers: the bytes never cross host
            # memory, so the staging bus is not occupied at all.
            return Route("p2p", 1.0, 0.0, 0.0)
        return Route("staged", self.staging_factor, self.staging_factor, self.staging_latency)

    def transfer_time(self, src: int, dst: int, nbytes: int, *, p2p: Optional[bool] = None) -> float:
        """Modelled duration of one copy between endpoints.

        Device-to-device copies without P2P pay the staging factor.
        """
        r = self.route(src, dst, p2p=p2p)
        return self.pcie_latency + float(nbytes) * r.lane_factor / self.pcie_bw
