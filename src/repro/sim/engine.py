"""The resource scheduler behind the timing simulation.

Model: one sequential *host* thread orchestrates asynchronous work on
per-device *compute queues* (FIFO, availability time) and per-device *PCIe
lanes* plus one *host staging bus* (busy-interval lists with first-fit
backfill — DMA engines are independent, so a transfer may start in any gap
after its issue time on all of its resources).

Device-to-device copies without peer-to-peer DMA are staged through host
memory: they occupy both device lanes for the inflated duration and the
staging bus for ``bytes * staging_factor / host_bus_bw`` — the aggregate
host-memory bandwidth shared by *all* concurrent staged traffic, which is
what throttles e.g. the matmul redistribution when 16 GPUs exchange a whole
matrix at once. Host-to/from-device copies occupy the bus for their plain
byte time.

This is the standard list-scheduling abstraction for BSP-style
orchestration; the paper's generated host code (Figure 4) is itself
barrier-structured (synchronize reads -> barrier -> launch -> update
trackers), so ``transfer``/``launch_kernel``/``synchronize`` reproduce
exactly that barrier discipline.

The async launch scheduler (``repro.sched``) instead issues *event-driven*
work: ``stream_transfer`` starts a copy as soon as its explicit dependency
events have fired (copy engines do not wait for compute queues), and
``launch_kernel`` accepts dependency events so a kernel partition starts
when *its* feeding transfers complete rather than at a global barrier.
Both return their completion time, which is the event currency the
scheduler threads through the DAG. :class:`SimStream` models an in-order
CUDA stream on top of these events for the runtime's async memcpy path.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Sequence, Tuple

from repro.constants import HOST
from repro.errors import SimulationError
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category, Trace

__all__ = ["SimMachine", "SimStream", "Category"]


class SimStream:
    """An in-order queue of asynchronous operations on the simulated machine.

    The stream itself holds no resources — lanes and compute queues do — it
    only remembers the completion time of the last operation enqueued on it,
    which is what a ``cudaStreamSynchronize`` replacement waits for.
    """

    __slots__ = ("machine", "name", "_cursor")

    def __init__(self, machine: "SimMachine", name: str = "stream") -> None:
        self.machine = machine
        self.name = name
        self._cursor = 0.0

    def record(self, event: float) -> float:
        """Enqueue-order completion point: streams preserve issue order."""
        self._cursor = max(self._cursor, event)
        return self._cursor

    @property
    def avail(self) -> float:
        """Completion time of the last operation enqueued on this stream."""
        return self._cursor


class _Lane:
    """A transfer resource with busy intervals and first-fit gap search."""

    __slots__ = ("busy",)

    def __init__(self) -> None:
        self.busy: List[Tuple[float, float]] = []

    def next_fit(self, earliest: float, duration: float) -> float:
        """Earliest start >= ``earliest`` with a free gap of ``duration``."""
        t = earliest
        for start, end in self.busy:
            if t + duration <= start:
                return t
            if end > t:
                t = end
        return t

    def reserve(self, start: float, end: float) -> None:
        insort(self.busy, (start, end))
        if len(self.busy) > 512:
            # Compact: merge fully past intervals to bound the list.
            horizon = self.busy[len(self.busy) // 2][0]
            merged = [iv for iv in self.busy if iv[1] > horizon]
            prefix_end = max((iv[1] for iv in self.busy if iv[1] <= horizon), default=0.0)
            self.busy = [(0.0, prefix_end)] + merged if prefix_end > 0 else merged

    @property
    def avail(self) -> float:
        return self.busy[-1][1] if self.busy else 0.0


class SimMachine:
    """Simulated clock and resources for one application run."""

    def __init__(self, spec: MachineSpec, *, trace: Optional[Trace] = None) -> None:
        self.spec = spec
        self.trace = trace if trace is not None else Trace()
        self.host_time = 0.0
        self._dev_avail: List[float] = [0.0] * spec.n_gpus
        self._lanes: List[_Lane] = [_Lane() for _ in range(spec.n_gpus)]
        self._bus = _Lane()

    # -- helpers -------------------------------------------------------------

    def _check_dev(self, dev: int) -> None:
        if not (0 <= dev < self.spec.n_gpus):
            raise SimulationError(f"device id {dev} out of range (n_gpus={self.spec.n_gpus})")

    @property
    def now(self) -> float:
        """Current host time (seconds of simulated wall clock)."""
        return self.host_time

    # -- host work -------------------------------------------------------------

    def host_compute(self, duration: float, category: Category, label: str = "") -> None:
        """Sequential host work (pattern resolution, orchestration)."""
        if duration < 0:
            raise SimulationError("negative host_compute duration")
        start = self.host_time
        self.host_time += duration
        if duration > 0:
            self.trace.record("host", start, self.host_time, category, label)

    # -- device work -------------------------------------------------------------

    def launch_kernel(
        self,
        dev: int,
        duration: float,
        label: str = "",
        *,
        deps: Sequence[float] = (),
        launch: Optional[int] = None,
    ) -> float:
        """Asynchronously enqueue a kernel of the given modelled duration.

        ``deps`` are completion events the kernel must wait for (the DAG
        scheduler passes the end times of the transfers feeding this
        partition's read set); ``launch`` tags the trace interval with the
        originating kernel-launch index for per-launch attribution.
        Returns the kernel's completion event.
        """
        self._check_dev(dev)
        if duration < 0:
            raise SimulationError("negative kernel duration")
        self.host_compute(self.spec.issue_overhead, Category.HOST, f"issue:{label}")
        start = max(self.host_time, self._dev_avail[dev], *deps) if deps else max(
            self.host_time, self._dev_avail[dev]
        )
        end = start + duration
        self._dev_avail[dev] = end
        self.trace.record(f"gpu{dev}", start, end, Category.APPLICATION, label, launch=launch)
        return end

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        *,
        category: Category = Category.TRANSFERS,
        label: str = "",
        synchronous: bool = False,
        launch: Optional[int] = None,
    ) -> float:
        """Copy ``nbytes`` between endpoints (device id or ``HOST``).

        Barrier-era semantics (Figure 4's host orchestration): the copy may
        not start before the involved devices' compute queues have drained.
        Returns the completion event.
        """
        earliest = self.host_time
        if src != HOST and 0 <= src < self.spec.n_gpus:
            earliest = max(earliest, self._dev_avail[src])
        if dst != HOST and 0 <= dst < self.spec.n_gpus:
            earliest = max(earliest, self._dev_avail[dst])
        end = self._schedule_copy(
            src, dst, nbytes, earliest, category=category, label=label, p2p=None,
            launch=launch,
        )
        if synchronous:
            self.host_time = max(self.host_time, end)
        return end

    def stream_transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        *,
        deps: Sequence[float] = (),
        category: Category = Category.TRANSFERS,
        label: str = "",
        p2p: Optional[bool] = None,
        launch: Optional[int] = None,
    ) -> float:
        """Dependency-scheduled copy on the DMA engines.

        Unlike :meth:`transfer`, the copy does *not* wait for the involved
        compute queues — copy engines genuinely overlap compute — only for
        the explicit ``deps`` events (plus free gaps on its lanes and, for
        staged routes, the host bus). ``p2p`` overrides the machine-wide
        peer-access flag for this copy. Returns the completion event.
        """
        earliest = max(self.host_time, *deps) if deps else self.host_time
        return self._schedule_copy(
            src, dst, nbytes, earliest, category=category, label=label, p2p=p2p,
            launch=launch,
        )

    def _copy_resources(
        self, src: int, dst: int, nbytes: int, p2p: Optional[bool]
    ) -> Tuple[float, List[Tuple[_Lane, float]], str]:
        """Route one copy onto concrete resources.

        Returns ``(duration, [(lane, occupancy), ...], trace_resource)``.
        Subclasses (the cluster machine) override this to add network hops;
        occupancies longer than ``duration`` extend the completion time.
        """
        return self._local_copy_resources(src, dst, nbytes, p2p, self._bus)

    def _local_copy_resources(
        self, src: int, dst: int, nbytes: int, p2p: Optional[bool], bus: _Lane
    ) -> Tuple[float, List[Tuple[_Lane, float]], str]:
        """Intra-node routing against one host staging bus."""
        duration = self.spec.transfer_time(src, dst, nbytes, p2p=p2p)

        # Bus occupancy: aggregate host-memory bandwidth consumed, plus the
        # per-copy staging setup for device-to-device traffic. Direct P2P
        # copies never touch host memory and skip the bus entirely.
        route = self.spec.route(src, dst, p2p=p2p)
        bus_time = nbytes * route.bus_factor / self.spec.host_bus_bw + route.extra_latency

        lanes: List[Tuple[_Lane, float]] = []
        if src != HOST:
            lanes.append((self._lanes[src], duration))
        if dst != HOST:
            lanes.append((self._lanes[dst], duration))
        if bus_time > 0:
            lanes.append((bus, bus_time))
        resource = (
            f"lane{src}" if src != HOST else (f"lane{dst}" if dst != HOST else "bus")
        )
        return duration, lanes, resource

    def _shared_lanes(self) -> List[_Lane]:
        """Machine-wide transfer resources a full barrier must drain."""
        return [self._bus]

    def _schedule_copy(
        self,
        src: int,
        dst: int,
        nbytes: int,
        earliest: float,
        *,
        category: Category,
        label: str,
        p2p: Optional[bool],
        launch: Optional[int] = None,
    ) -> float:
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        if src != HOST:
            self._check_dev(src)
        if dst != HOST:
            self._check_dev(dst)
        self.host_compute(self.spec.issue_overhead, Category.HOST, f"issue:{label}")
        earliest = max(earliest, self.host_time)
        if nbytes == 0:
            return self.host_time
        duration, lanes, resource = self._copy_resources(src, dst, nbytes, p2p)

        # First-fit over all involved resources (per-resource durations):
        # iterate to a common start where each has a large-enough gap.
        start = earliest
        for _ in range(1000):
            proposal = start
            for lane, dur in lanes:
                proposal = lane.next_fit(proposal, dur)
            if proposal == start:
                break
            start = proposal
        end = start + duration
        for lane, dur in lanes:
            lane.reserve(start, start + dur)
            end = max(end, start + dur)
        self.trace.record(resource, start, end, category, label, launch=launch)
        return end

    # -- synchronization ------------------------------------------------------------

    def synchronize(self, devices: Optional[Sequence[int]] = None) -> None:
        """Barrier: host waits for device queues and outstanding transfers."""
        self.host_compute(self.spec.sync_overhead, Category.HOST, "sync")
        targets = range(self.spec.n_gpus) if devices is None else devices
        t = self.host_time
        for d in targets:
            self._check_dev(d)
            t = max(t, self._dev_avail[d], self._lanes[d].avail)
        if devices is None:
            for lane in self._shared_lanes():
                t = max(t, lane.avail)
        self.host_time = t

    def wait_device(self, dev: int) -> None:
        """Host waits for one device's compute queue and lane."""
        self._check_dev(dev)
        self.host_time = max(self.host_time, self._dev_avail[dev], self._lanes[dev].avail)

    def wait_until(self, event: float, label: str = "event-sync", *, charge: bool = True) -> None:
        """Host blocks until ``event`` fires (stream/event synchronization).

        ``charge=False`` skips the synchronization-call overhead — used where
        the barrier-era code path advanced the host clock without charging
        one (synchronous :meth:`transfer`), so the event-driven path never
        pays host overhead its baseline did not.
        """
        if charge:
            self.host_compute(self.spec.sync_overhead, Category.HOST, label)
        self.host_time = max(self.host_time, event)

    def create_stream(self, name: str = "stream") -> SimStream:
        """A new in-order stream (see :class:`SimStream`)."""
        return SimStream(self, name)

    def elapsed(self) -> float:
        """Total makespan so far (host and all resources drained)."""
        t = self.host_time
        for lane in self._shared_lanes():
            t = max(t, lane.avail)
        for v in self._dev_avail:
            t = max(t, v)
        for lane in self._lanes:
            t = max(t, lane.avail)
        return t
