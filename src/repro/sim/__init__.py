"""``repro.sim`` — the multi-GPU machine timing model.

Stands in for the paper's physical testbed (8 NVIDIA K80 boards = 16 GPUs on
PCIe in a dual-socket host). The runtime's orchestration logic runs for
real; only device execution and data movement are *costed* instead of
performed, via a resource-availability scheduler: every device compute
queue, every per-device PCIe lane and the host thread is a resource with an
availability time, and operations advance them.
"""

from repro.sim.topology import MachineSpec
from repro.sim.engine import SimMachine, Category
from repro.sim.trace import Trace, Interval

__all__ = ["MachineSpec", "SimMachine", "Category", "Trace", "Interval"]
