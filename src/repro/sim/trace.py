"""Execution traces for the timing simulator.

Every scheduled operation is recorded as an :class:`Interval` tagged with a
category matching the paper's Figure 7 terminology:

* ``APPLICATION`` — kernel execution on a device,
* ``TRANSFERS`` — data movement for buffer synchronization and memcopies,
* ``PATTERNS`` — host-side dependency resolution (enumerators, tracker),
* ``HOST`` — other host work (issue overheads, synchronization calls).

The async launch scheduler additionally splits ``TRANSFERS`` time into two
*sub-categories* computed from the recorded intervals: **hidden** transfer
time (wall-clock during which some kernel was executing concurrently, i.e.
the copy engines genuinely overlapped compute) and **exposed** transfer
time (no kernel was running — the interconnect was on the critical path).
``hidden + exposed == busy_time(TRANSFERS)`` always holds, so the paper's
α/β/γ accounting identities are unaffected by the refinement.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Category", "Interval", "Trace"]


class Category(enum.Enum):
    """Figure 7 time categories: kernel work, coherence traffic, host patterns."""

    APPLICATION = "application"
    TRANSFERS = "transfers"
    PATTERNS = "patterns"
    HOST = "host"


@dataclass(frozen=True)
class Interval:
    """One scheduled operation on one resource."""

    resource: str
    start: float
    end: float
    category: Category
    label: str = ""
    #: Index of the kernel launch that originated this operation, or None
    #: for work that belongs to no particular launch (memcopies, memsets).
    #: The pipelined executor interleaves tasks from several launches, so
    #: attribution must ride on the interval itself rather than be inferred
    #: from trace order.
    launch: Optional[int] = None
    #: Tenant that originated this operation in a multi-tenant serving run
    #: (:mod:`repro.serve`), or None outside the serve path. The serve
    #: runtime stamps :attr:`Trace.current_tenant` around each job's
    #: service, so shared-resource intervals stay attributable after the
    #: fair-share scheduler interleaves tenants' streams.
    tenant: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only list of intervals with per-category aggregation."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        #: Tenant id stamped onto every interval recorded while set (the
        #: serve runtime brackets each job's service with it); None outside
        #: multi-tenant serving, which keeps single-job traces unchanged.
        self.current_tenant: Optional[int] = None

    def record(
        self,
        resource: str,
        start: float,
        end: float,
        category: Category,
        label: str = "",
        launch: Optional[int] = None,
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} .. {end}")
        self.intervals.append(
            Interval(resource, start, end, category, label, launch, self.current_tenant)
        )

    def busy_time_by_tenant(self, category: Optional[Category] = None) -> Dict[Optional[int], float]:
        """Per-tenant busy time, optionally restricted to one category.

        Intervals recorded outside any tenant's service (or outside the
        serve path entirely) land under the ``None`` key; summing over all
        keys reproduces :meth:`busy_time` exactly.
        """
        out: Dict[Optional[int], float] = {}
        for iv in self.intervals:
            if category is None or iv.category is category:
                out[iv.tenant] = out.get(iv.tenant, 0.0) + iv.duration
        return out

    def busy_time(self, category: Optional[Category] = None) -> float:
        """Total busy time, optionally restricted to one category."""
        return sum(
            iv.duration
            for iv in self.intervals
            if category is None or iv.category is category
        )

    def by_category(self) -> Dict[Category, float]:
        out: Dict[Category, float] = {c: 0.0 for c in Category}
        for iv in self.intervals:
            out[iv.category] += iv.duration
        return out

    def by_resource(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for iv in self.intervals:
            out[iv.resource] = out.get(iv.resource, 0.0) + iv.duration
        return out

    def transfer_exposure(self) -> Dict[str, float]:
        """Split TRANSFERS busy time into overlap-hidden vs exposed.

        A transfer second is *hidden* when at least one kernel
        (``APPLICATION`` interval on a ``gpu*`` resource) runs concurrently,
        and *exposed* otherwise. ``hidden + exposed`` equals
        ``busy_time(TRANSFERS)`` exactly.
        """
        tiers = self.transfer_exposure_by_tier()
        return {
            "hidden": tiers["intra"]["hidden"] + tiers["inter"]["hidden"],
            "exposed": tiers["intra"]["exposed"] + tiers["inter"]["exposed"],
        }

    def _compute_union(self) -> List[tuple]:
        """Disjoint union of all kernel-execution windows (overlap witness)."""
        return _union(
            (iv.start, iv.end)
            for iv in self.intervals
            if iv.category is Category.APPLICATION and iv.resource.startswith("gpu")
        )

    def transfer_exposure_by_launch(self) -> Dict[Optional[int], Dict[str, Dict[str, float]]]:
        """Per-launch hidden/exposed TRANSFERS time, split intra vs inter.

        Attribution is by each interval's *originating launch index* — not
        by trace position — so it stays correct when the pipelined executor
        interleaves tasks from several launches on the copy engines.
        Transfers that belong to no launch (none today; coherence traffic is
        always launch-originated) land under the ``None`` key. Summing the
        four buckets over every key reproduces ``busy_time(TRANSFERS)``
        exactly: each transfer second lands in exactly one
        (launch, tier, hidden/exposed) cell.
        """
        compute = self._compute_union()
        out: Dict[Optional[int], Dict[str, Dict[str, float]]] = {}
        for iv in self.intervals:
            if iv.category is not Category.TRANSFERS:
                continue
            tiers = out.setdefault(
                iv.launch,
                {
                    "intra": {"hidden": 0.0, "exposed": 0.0},
                    "inter": {"hidden": 0.0, "exposed": 0.0},
                },
            )
            bucket = tiers["inter" if iv.resource == "net" else "intra"]
            hidden = _overlap(iv.start, iv.end, compute)
            bucket["hidden"] += hidden
            bucket["exposed"] += iv.duration - hidden
        return out

    def transfer_exposure_by_tier(self) -> Dict[str, Dict[str, float]]:
        """Hidden/exposed TRANSFERS time, split intra-node vs inter-node.

        Cluster machines record cross-node copies on the ``net`` resource;
        every other transfer is intra-node. The four buckets partition
        ``busy_time(TRANSFERS)`` exactly, so the α/β/γ identities carry
        over to each tier. Computed as the sum over the per-launch
        attribution (:meth:`transfer_exposure_by_launch`), which makes the
        partition property hold bucket by bucket even when launches
        interleave.
        """
        tiers = {
            "intra": {"hidden": 0.0, "exposed": 0.0},
            "inter": {"hidden": 0.0, "exposed": 0.0},
        }
        for per_launch in self.transfer_exposure_by_launch().values():
            for tier in ("intra", "inter"):
                for kind in ("hidden", "exposed"):
                    tiers[tier][kind] += per_launch[tier][kind]
        return tiers

    def __len__(self) -> int:
        return len(self.intervals)


def _union(intervals) -> List[tuple]:
    """Sorted disjoint union of (start, end) intervals."""
    merged: List[tuple] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _overlap(start: float, end: float, union: List[tuple]) -> float:
    """Measure of ``[start, end]`` covered by a sorted disjoint union."""
    lo = bisect_right(union, (start, float("inf"))) - 1
    covered = 0.0
    for i in range(max(lo, 0), len(union)):
        a, b = union[i]
        if a >= end:
            break
        covered += max(0.0, min(end, b) - max(start, a))
    return covered
