"""Execution traces for the timing simulator.

Every scheduled operation is recorded as an :class:`Interval` tagged with a
category matching the paper's Figure 7 terminology:

* ``APPLICATION`` — kernel execution on a device,
* ``TRANSFERS`` — data movement for buffer synchronization and memcopies,
* ``PATTERNS`` — host-side dependency resolution (enumerators, tracker),
* ``HOST`` — other host work (issue overheads, synchronization calls).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Category", "Interval", "Trace"]


class Category(enum.Enum):
    """Figure 7 time categories: kernel work, coherence traffic, host patterns."""

    APPLICATION = "application"
    TRANSFERS = "transfers"
    PATTERNS = "patterns"
    HOST = "host"


@dataclass(frozen=True)
class Interval:
    """One scheduled operation on one resource."""

    resource: str
    start: float
    end: float
    category: Category
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only list of intervals with per-category aggregation."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []

    def record(
        self, resource: str, start: float, end: float, category: Category, label: str = ""
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} .. {end}")
        self.intervals.append(Interval(resource, start, end, category, label))

    def busy_time(self, category: Optional[Category] = None) -> float:
        """Total busy time, optionally restricted to one category."""
        return sum(
            iv.duration
            for iv in self.intervals
            if category is None or iv.category is category
        )

    def by_category(self) -> Dict[Category, float]:
        out: Dict[Category, float] = {c: 0.0 for c in Category}
        for iv in self.intervals:
            out[iv.category] += iv.duration
        return out

    def by_resource(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for iv in self.intervals:
            out[iv.resource] = out.get(iv.resource, 0.0) + iv.duration
        return out

    def __len__(self) -> int:
        return len(self.intervals)
