"""Expression nodes of the kernel IR.

Expressions are immutable trees. Every node carries its scalar
:class:`~repro.cuda.dtypes.DType`. Integer index arithmetic uses ``i64``
throughout (CUDA's 32-bit indices are an optimization this reproduction does
not model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from repro.cuda.dtypes import DType, boolean, f32, f64, i64, promote
from repro.errors import ValidationError

__all__ = [
    "Expr",
    "Const",
    "GridIdx",
    "Param",
    "LocalRef",
    "BinOp",
    "UnOp",
    "Call",
    "Select",
    "Load",
    "ARITH_OPS",
    "CMP_OPS",
    "BOOL_OPS",
    "GRID_REGISTERS",
    "MATH_FUNCTIONS",
]

#: CUDA special registers the IR can reference.
GRID_REGISTERS = ("threadIdx", "blockIdx", "blockDim", "gridDim", "blockOff")

ARITH_OPS = ("add", "sub", "mul", "div", "fdiv", "mod", "min", "max")
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")
BOOL_OPS = ("and", "or")
MATH_FUNCTIONS = ("sqrt", "rsqrt", "abs", "exp", "log", "pow", "floor")


class Expr:
    """Base class of IR expressions."""

    __slots__ = ()

    @property
    def dtype(self) -> DType:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A literal scalar."""

    value: Union[int, float, bool]
    _dtype: DType

    @property
    def dtype(self) -> DType:
        return self._dtype

    @staticmethod
    def of(value: Union[int, float, bool], dtype: DType = None) -> "Const":
        if dtype is None:
            if isinstance(value, bool):
                dtype = boolean
            elif isinstance(value, int):
                dtype = i64
            else:
                dtype = f64
        return Const(value, dtype)


@dataclass(frozen=True)
class GridIdx(Expr):
    """A CUDA special register component, e.g. ``blockIdx.x``.

    ``blockOff`` is not a real CUDA register: it is the synthetic dimension
    the analysis introduces for ``blockIdx.w * blockDim.w`` (Section 4.1) and
    the partitioning transform materializes.
    """

    register: str
    axis: str

    def __post_init__(self) -> None:
        if self.register not in GRID_REGISTERS:
            raise ValidationError(f"unknown grid register {self.register!r}")
        if self.axis not in ("x", "y", "z"):
            raise ValidationError(f"unknown grid axis {self.axis!r}")

    @property
    def dtype(self) -> DType:
        return i64

    def __str__(self) -> str:
        return f"{self.register}.{self.axis}"


@dataclass(frozen=True)
class Param(Expr):
    """Reference to a scalar kernel parameter."""

    name: str
    _dtype: DType

    @property
    def dtype(self) -> DType:
        return self._dtype


@dataclass(frozen=True)
class LocalRef(Expr):
    """Reference to a ``Let``/``For``-bound local variable."""

    name: str
    _dtype: DType

    @property
    def dtype(self) -> DType:
        return self._dtype


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; comparison and boolean ops yield ``bool``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS + CMP_OPS + BOOL_OPS:
            raise ValidationError(f"unknown binary op {self.op!r}")

    @property
    def dtype(self) -> DType:
        if self.op in CMP_OPS or self.op in BOOL_OPS:
            return boolean
        return promote(self.lhs.dtype, self.rhs.dtype)


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation: ``neg`` or ``not``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("neg", "not"):
            raise ValidationError(f"unknown unary op {self.op!r}")

    @property
    def dtype(self) -> DType:
        return boolean if self.op == "not" else self.operand.dtype


@dataclass(frozen=True)
class Call(Expr):
    """Math intrinsic call (``sqrt``, ``rsqrt``, ``abs``, ...)."""

    fn: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.fn not in MATH_FUNCTIONS:
            raise ValidationError(f"unknown math function {self.fn!r}")

    @property
    def dtype(self) -> DType:
        dt = self.args[0].dtype
        return dt if dt.is_float else f64


@dataclass(frozen=True)
class Select(Expr):
    """Ternary select ``cond ? a : b``."""

    cond: Expr
    on_true: Expr
    on_false: Expr

    @property
    def dtype(self) -> DType:
        return promote(self.on_true.dtype, self.on_false.dtype)


@dataclass(frozen=True)
class Load(Expr):
    """Element load from a (multi-dimensional, row-major) array parameter."""

    array: str
    indices: Tuple[Expr, ...]
    _dtype: DType

    @property
    def dtype(self) -> DType:
        return self._dtype
