"""Typed kernel IR for the mini-CUDA substrate."""

from repro.cuda.ir.exprs import (
    Expr,
    Const,
    GridIdx,
    Param,
    LocalRef,
    BinOp,
    UnOp,
    Call,
    Select,
    Load,
)
from repro.cuda.ir.stmts import Stmt, Let, Assign, Store, If, For
from repro.cuda.ir.kernel import Kernel, ArrayParam, ScalarParam, PartitionParam
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.printer import kernel_to_cuda

__all__ = [
    "Expr",
    "Const",
    "GridIdx",
    "Param",
    "LocalRef",
    "BinOp",
    "UnOp",
    "Call",
    "Select",
    "Load",
    "Stmt",
    "Let",
    "Assign",
    "Store",
    "If",
    "For",
    "Kernel",
    "ArrayParam",
    "ScalarParam",
    "PartitionParam",
    "KernelBuilder",
    "kernel_to_cuda",
]
