"""A small embedded DSL for writing mini-CUDA kernels.

Example (5-point stencil)::

    kb = KernelBuilder("hotspot")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy > 0) & (gy < n - 1) & (gx > 0) & (gx < n - 1)):
        center = src[gy, gx]
        acc = src[gy - 1, gx] + src[gy + 1, gx] + src[gy, gx - 1] + src[gy, gx + 1]
        dst[gy, gx] = center + 0.1 * (acc - 4.0 * center)
    kernel = kb.finish()

``global_id`` deliberately emits the literal ``blockIdx.w * blockDim.w +
threadIdx.w`` product so the compiler's blockOff recognizer (Section 4.1)
has real work to do.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.cuda.dtypes import DType, boolean, f32, f64, i64
from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import ArrayParam, Kernel, ScalarParam
from repro.cuda.ir.stmts import Assign, For, If, Let, Stmt, Store
from repro.errors import ValidationError

__all__ = ["KernelBuilder", "Val", "ArrayHandle"]

Number = Union[int, float, bool]
ValLike = Union["Val", Number]


class Val:
    """Wrapper adding Python operators to IR expressions."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    @property
    def dtype(self) -> DType:
        return self.expr.dtype

    # -- coercion ----------------------------------------------------------

    def _wrap(self, other: ValLike) -> "Val":
        if isinstance(other, Val):
            return other
        if isinstance(other, bool):
            return Val(Const(other, boolean))
        if isinstance(other, int):
            dt = self.dtype if not self.dtype.is_float else self.dtype
            return Val(Const(other, dt if not self.dtype.is_float else self.dtype))
        if isinstance(other, float):
            dt = self.dtype if self.dtype.is_float else f64
            return Val(Const(other, dt))
        raise TypeError(f"cannot use {type(other).__name__} in a kernel expression")

    def _bin(self, op: str, other: ValLike, *, swap: bool = False) -> "Val":
        rhs = self._wrap(other)
        a, b = (rhs, self) if swap else (self, rhs)
        return Val(BinOp(op, a.expr, b.expr))

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, o: ValLike) -> "Val":
        return self._bin("add", o)

    def __radd__(self, o: ValLike) -> "Val":
        return self._bin("add", o, swap=True)

    def __sub__(self, o: ValLike) -> "Val":
        return self._bin("sub", o)

    def __rsub__(self, o: ValLike) -> "Val":
        return self._bin("sub", o, swap=True)

    def __mul__(self, o: ValLike) -> "Val":
        return self._bin("mul", o)

    def __rmul__(self, o: ValLike) -> "Val":
        return self._bin("mul", o, swap=True)

    def __truediv__(self, o: ValLike) -> "Val":
        return self._bin("div", o)

    def __rtruediv__(self, o: ValLike) -> "Val":
        return self._bin("div", o, swap=True)

    def __floordiv__(self, o: ValLike) -> "Val":
        return self._bin("fdiv", o)

    def __rfloordiv__(self, o: ValLike) -> "Val":
        return self._bin("fdiv", o, swap=True)

    def __mod__(self, o: ValLike) -> "Val":
        return self._bin("mod", o)

    def __neg__(self) -> "Val":
        return Val(UnOp("neg", self.expr))

    # -- comparisons ---------------------------------------------------------

    def __lt__(self, o: ValLike) -> "Val":
        return self._bin("lt", o)

    def __le__(self, o: ValLike) -> "Val":
        return self._bin("le", o)

    def __gt__(self, o: ValLike) -> "Val":
        return self._bin("gt", o)

    def __ge__(self, o: ValLike) -> "Val":
        return self._bin("ge", o)

    def eq(self, o: ValLike) -> "Val":
        """Element equality (named method; ``==`` is Python identity here)."""
        return self._bin("eq", o)

    def ne(self, o: ValLike) -> "Val":
        return self._bin("ne", o)

    # -- boolean --------------------------------------------------------------

    def __and__(self, o: ValLike) -> "Val":
        return self._bin("and", o)

    def __or__(self, o: ValLike) -> "Val":
        return self._bin("or", o)

    def __invert__(self) -> "Val":
        return Val(UnOp("not", self.expr))


class ArrayHandle:
    """Subscriptable handle for an array parameter inside the builder."""

    __slots__ = ("param", "_builder")

    def __init__(self, param: ArrayParam, builder: "KernelBuilder") -> None:
        self.param = param
        self._builder = builder

    @property
    def name(self) -> str:
        return self.param.name

    def _index_tuple(self, idx) -> Tuple[Expr, ...]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        if len(idx) != self.param.ndim:
            raise ValidationError(
                f"array {self.name!r} has {self.param.ndim} dims, got {len(idx)} indices"
            )
        out: List[Expr] = []
        for i in idx:
            if isinstance(i, Val):
                out.append(i.expr)
            elif isinstance(i, int):
                out.append(Const(i, i64))
            else:
                raise TypeError(f"bad array index {i!r}")
        return tuple(out)

    def __getitem__(self, idx) -> Val:
        return Val(Load(self.name, self._index_tuple(idx), self.param.dtype))

    def __setitem__(self, idx, value: ValLike) -> None:
        indices = self._index_tuple(idx)
        if not isinstance(value, Val):
            value = Val(Const(value, self.param.dtype if isinstance(value, float) else i64))
        self._builder._append(Store(self.name, indices, value.expr))


class _AxisAccessor:
    """``kb.blockIdx.x`` style access to grid registers."""

    __slots__ = ("register",)

    def __init__(self, register: str) -> None:
        self.register = register

    @property
    def x(self) -> Val:
        return Val(GridIdx(self.register, "x"))

    @property
    def y(self) -> Val:
        return Val(GridIdx(self.register, "y"))

    @property
    def z(self) -> Val:
        return Val(GridIdx(self.register, "z"))

    def axis(self, a: str) -> Val:
        return Val(GridIdx(self.register, a))


class KernelBuilder:
    """Accumulates parameters and statements, then builds a validated kernel."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._params: List = []
        self._blocks: List[List[Stmt]] = [[]]
        self._local_count = 0
        self._last_if: Optional[If] = None

    # -- grid registers ------------------------------------------------------

    threadIdx = property(lambda self: _AxisAccessor("threadIdx"))
    blockIdx = property(lambda self: _AxisAccessor("blockIdx"))
    blockDim = property(lambda self: _AxisAccessor("blockDim"))
    gridDim = property(lambda self: _AxisAccessor("gridDim"))

    def global_id(self, axis: str) -> Val:
        """Global thread index along an axis, as the literal CUDA idiom."""
        b = _AxisAccessor("blockIdx").axis(axis)
        d = _AxisAccessor("blockDim").axis(axis)
        t = _AxisAccessor("threadIdx").axis(axis)
        return b * d + t

    # -- parameters ------------------------------------------------------------

    def scalar(self, name: str, dtype: DType = i64) -> Val:
        param = ScalarParam(name, dtype)
        self._params.append(param)
        return Val(Param(name, dtype))

    def array(self, name: str, dtype: DType, shape: Sequence[ValLike]) -> ArrayHandle:
        exprs: List[Expr] = []
        for s in shape:
            if isinstance(s, Val):
                exprs.append(s.expr)
            elif isinstance(s, int):
                exprs.append(Const(s, i64))
            else:
                raise TypeError(f"bad array extent {s!r}")
        param = ArrayParam(name, dtype, tuple(exprs))
        self._params.append(param)
        return ArrayHandle(param, self)

    # -- statements ---------------------------------------------------------------

    def _append(self, stmt: Stmt) -> None:
        self._blocks[-1].append(stmt)

    def let(self, name: str, value: ValLike) -> Val:
        """Bind a named local and return a reference to it."""
        if not isinstance(value, Val):
            value = Val(Const.of(value))
        self._append(Let(name, value.expr))
        return Val(LocalRef(name, value.dtype))

    def assign(self, ref: Val, value: ValLike) -> None:
        """Rebind a local previously created with :meth:`let`."""
        if not isinstance(ref.expr, LocalRef):
            raise ValidationError("assign() target must be a local variable reference")
        if not isinstance(value, Val):
            value = Val(Const.of(value))
        self._append(Assign(ref.expr.name, value.expr))

    @contextlib.contextmanager
    def if_(self, cond: Val) -> Iterator[None]:
        """Structured conditional; pair with :meth:`otherwise` for else."""
        self._blocks.append([])
        try:
            yield
        finally:
            then = tuple(self._blocks.pop())
            stmt = If(cond.expr, then, ())
            self._append(stmt)
            self._last_if = stmt

    @contextlib.contextmanager
    def otherwise(self) -> Iterator[None]:
        """Else-branch of the immediately preceding :meth:`if_`."""
        if self._last_if is None or not self._blocks[-1] or self._blocks[-1][-1] is not self._last_if:
            raise ValidationError("otherwise() must immediately follow an if_()")
        prev = self._blocks[-1].pop()
        self._blocks.append([])
        try:
            yield
        finally:
            orelse = tuple(self._blocks.pop())
            self._append(If(prev.cond, prev.then, orelse))
            self._last_if = None

    @contextlib.contextmanager
    def for_range(self, name: str, lo: ValLike, hi: ValLike) -> Iterator[Val]:
        """Counted loop over ``[lo, hi)``; yields the loop variable."""
        lo_v = lo if isinstance(lo, Val) else Val(Const(int(lo), i64))
        hi_v = hi if isinstance(hi, Val) else Val(Const(int(hi), i64))
        self._blocks.append([])
        try:
            yield Val(LocalRef(name, i64))
        finally:
            body = tuple(self._blocks.pop())
            self._append(For(name, lo_v.expr, hi_v.expr, body))

    # -- intrinsics -------------------------------------------------------------

    def sqrt(self, x: Val) -> Val:
        return Val(Call("sqrt", (x.expr,)))

    def rsqrt(self, x: Val) -> Val:
        return Val(Call("rsqrt", (x.expr,)))

    def abs(self, x: Val) -> Val:
        return Val(Call("abs", (x.expr,)))

    def select(self, cond: Val, a: ValLike, b: ValLike) -> Val:
        if not isinstance(a, Val):
            a = Val(Const.of(a))
        if not isinstance(b, Val):
            b = Val(Const.of(b))
        return Val(Select(cond.expr, a.expr, b.expr))

    def minimum(self, a: Val, b: ValLike) -> Val:
        return a._bin("min", b)

    def maximum(self, a: Val, b: ValLike) -> Val:
        return a._bin("max", b)

    def f32const(self, v: float) -> Val:
        return Val(Const(float(v), f32))

    # -- finalize ----------------------------------------------------------------

    def finish(self) -> Kernel:
        """Build and validate the kernel."""
        if len(self._blocks) != 1:
            raise ValidationError("unclosed control-flow block in kernel builder")
        kernel = Kernel(self.name, tuple(self._params), tuple(self._blocks[0]))
        from repro.cuda.ir.validate import validate_kernel

        validate_kernel(kernel)
        return kernel
