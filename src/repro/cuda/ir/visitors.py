"""Generic traversal and rewriting of kernel IR.

``walk_expr``/``walk_body`` yield every node; ``ExprTransformer`` rebuilds
expression trees bottom-up through a user hook, and :func:`transform_kernel`
applies one to every expression in a kernel body. The blockOff recognizer
(Section 4.1) and the kernel partitioner (Section 7) are both built on these.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import Kernel
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Stmt, Store

__all__ = ["walk_expr", "walk_body", "map_exprs_in_body", "transform_kernel"]


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_expr(a)
    elif isinstance(expr, Select):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.on_true)
        yield from walk_expr(expr.on_false)
    elif isinstance(expr, Load):
        for i in expr.indices:
            yield from walk_expr(i)


def walk_body(body: Body) -> Iterator[Stmt]:
    """Yield every statement in a body, recursively (pre-order)."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_body(stmt.then)
            yield from walk_body(stmt.orelse)
        elif isinstance(stmt, For):
            yield from walk_body(stmt.body)


ExprFn = Callable[[Expr], Expr]


def map_expr(expr: Expr, fn: ExprFn) -> Expr:
    """Rebuild an expression bottom-up, applying ``fn`` at every node."""
    if isinstance(expr, BinOp):
        expr = BinOp(expr.op, map_expr(expr.lhs, fn), map_expr(expr.rhs, fn))
    elif isinstance(expr, UnOp):
        expr = UnOp(expr.op, map_expr(expr.operand, fn))
    elif isinstance(expr, Call):
        expr = Call(expr.fn, tuple(map_expr(a, fn) for a in expr.args))
    elif isinstance(expr, Select):
        expr = Select(
            map_expr(expr.cond, fn), map_expr(expr.on_true, fn), map_expr(expr.on_false, fn)
        )
    elif isinstance(expr, Load):
        expr = Load(expr.array, tuple(map_expr(i, fn) for i in expr.indices), expr._dtype)
    return fn(expr)


def map_exprs_in_body(body: Body, fn: ExprFn) -> Body:
    """Rebuild a statement body with ``fn`` applied to every expression."""
    out = []
    for stmt in body:
        if isinstance(stmt, Let):
            out.append(Let(stmt.name, map_expr(stmt.value, fn)))
        elif isinstance(stmt, Assign):
            out.append(Assign(stmt.name, map_expr(stmt.value, fn)))
        elif isinstance(stmt, Store):
            out.append(
                Store(
                    stmt.array,
                    tuple(map_expr(i, fn) for i in stmt.indices),
                    map_expr(stmt.value, fn),
                )
            )
        elif isinstance(stmt, If):
            out.append(
                If(
                    map_expr(stmt.cond, fn),
                    map_exprs_in_body(stmt.then, fn),
                    map_exprs_in_body(stmt.orelse, fn),
                )
            )
        elif isinstance(stmt, For):
            out.append(
                For(
                    stmt.var,
                    map_expr(stmt.lo, fn),
                    map_expr(stmt.hi, fn),
                    map_exprs_in_body(stmt.body, fn),
                )
            )
        else:
            raise TypeError(f"unknown statement {stmt!r}")
    return tuple(out)


def transform_kernel(kernel: Kernel, fn: ExprFn, *, name: str = None, extra_params=()) -> Kernel:
    """Clone a kernel with every expression rewritten by ``fn``."""
    return Kernel(
        name=name or kernel.name,
        params=tuple(kernel.params) + tuple(extra_params),
        body=map_exprs_in_body(kernel.body, fn),
    )
