"""Structural and type validation of kernel IR.

Checks, among others, that every referenced local is bound before use, that
array loads/stores match the parameter's rank and element type, that
condition expressions are boolean, and that array shape expressions only
reference scalar parameters.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.cuda.dtypes import boolean
from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import ArrayParam, Kernel, PartitionParam, ScalarParam
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Store
from repro.cuda.ir.visitors import walk_expr
from repro.errors import ValidationError

__all__ = ["validate_kernel"]


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`ValidationError` if the kernel IR is malformed."""
    seen: Set[str] = set()
    for p in kernel.params:
        if p.name in seen:
            raise ValidationError(
                f"kernel {kernel.name!r}: duplicate parameter name {p.name!r}"
            )
        seen.add(p.name)
    arrays = {p.name: p for p in kernel.array_params}
    scalars: Set[str] = {p.name for p in kernel.scalar_params}
    part = kernel.partition_param
    if part is not None:
        scalars.update(part.field_names())

    for p in kernel.array_params:
        for extent in p.shape:
            for node in walk_expr(extent):
                if isinstance(node, (Load, GridIdx, LocalRef)):
                    raise ValidationError(
                        f"array {p.name!r} extent may only use scalar parameters, found {node!r}"
                    )
                if isinstance(node, Param) and node.name not in scalars:
                    raise ValidationError(
                        f"array {p.name!r} extent references unknown scalar {node.name!r}"
                    )

    _check_body(kernel, kernel.body, set(), arrays, scalars)


def _check_expr(kernel: Kernel, expr: Expr, locals_: Set[str], arrays, scalars) -> None:
    for node in walk_expr(expr):
        if isinstance(node, LocalRef):
            if node.name not in locals_:
                raise ValidationError(
                    f"kernel {kernel.name!r}: local {node.name!r} used before definition"
                )
        elif isinstance(node, Param):
            if node.name not in scalars:
                raise ValidationError(
                    f"kernel {kernel.name!r}: unknown scalar parameter {node.name!r}"
                )
        elif isinstance(node, Load):
            if node.array not in arrays:
                if node.array in scalars:
                    raise ValidationError(
                        f"kernel {kernel.name!r}: load from scalar parameter "
                        f"{node.array!r} (not an array; reference it directly)"
                    )
                raise ValidationError(
                    f"kernel {kernel.name!r}: load from unknown array {node.array!r}"
                )
            ap = arrays[node.array]
            if len(node.indices) != ap.ndim:
                raise ValidationError(
                    f"kernel {kernel.name!r}: array {node.array!r} has {ap.ndim} dims, "
                    f"load uses {len(node.indices)} indices"
                )
            if node._dtype != ap.dtype:
                raise ValidationError(
                    f"kernel {kernel.name!r}: load dtype {node._dtype} != array {ap.dtype}"
                )
            for idx in node.indices:
                if idx.dtype.is_float:
                    raise ValidationError(
                        f"kernel {kernel.name!r}: float-typed index into {node.array!r}"
                    )
        elif isinstance(node, BinOp):
            if node.op in ("and", "or"):
                if node.lhs.dtype != boolean or node.rhs.dtype != boolean:
                    raise ValidationError(
                        f"kernel {kernel.name!r}: boolean op on non-boolean operands"
                    )
        elif isinstance(node, Select):
            if node.cond.dtype != boolean:
                raise ValidationError(f"kernel {kernel.name!r}: select condition is not boolean")


def _check_body(kernel: Kernel, body: Body, locals_: Set[str], arrays, scalars) -> None:
    for stmt in body:
        if isinstance(stmt, Let):
            _check_expr(kernel, stmt.value, locals_, arrays, scalars)
            if stmt.name in locals_:
                raise ValidationError(
                    f"kernel {kernel.name!r}: local {stmt.name!r} redefined (use Assign)"
                )
            if stmt.name in scalars or stmt.name in arrays:
                raise ValidationError(
                    f"kernel {kernel.name!r}: local {stmt.name!r} shadows a parameter"
                )
            locals_.add(stmt.name)
        elif isinstance(stmt, Assign):
            if stmt.name not in locals_:
                raise ValidationError(
                    f"kernel {kernel.name!r}: assignment to undefined local {stmt.name!r}"
                )
            _check_expr(kernel, stmt.value, locals_, arrays, scalars)
        elif isinstance(stmt, Store):
            if stmt.array not in arrays:
                if stmt.array in scalars:
                    raise ValidationError(
                        f"kernel {kernel.name!r}: store to scalar parameter "
                        f"{stmt.array!r} (not an array)"
                    )
                raise ValidationError(
                    f"kernel {kernel.name!r}: store to unknown array {stmt.array!r}"
                )
            ap = arrays[stmt.array]
            if len(stmt.indices) != ap.ndim:
                raise ValidationError(
                    f"kernel {kernel.name!r}: array {stmt.array!r} has {ap.ndim} dims, "
                    f"store uses {len(stmt.indices)} indices"
                )
            for idx in stmt.indices:
                _check_expr(kernel, idx, locals_, arrays, scalars)
                if idx.dtype.is_float:
                    raise ValidationError(
                        f"kernel {kernel.name!r}: float-typed index into {stmt.array!r}"
                    )
            _check_expr(kernel, stmt.value, locals_, arrays, scalars)
        elif isinstance(stmt, If):
            _check_expr(kernel, stmt.cond, locals_, arrays, scalars)
            if stmt.cond.dtype != boolean:
                raise ValidationError(f"kernel {kernel.name!r}: if-condition is not boolean")
            _check_body(kernel, stmt.then, set(locals_), arrays, scalars)
            _check_body(kernel, stmt.orelse, set(locals_), arrays, scalars)
        elif isinstance(stmt, For):
            _check_expr(kernel, stmt.lo, locals_, arrays, scalars)
            _check_expr(kernel, stmt.hi, locals_, arrays, scalars)
            if stmt.var in locals_ or stmt.var in scalars or stmt.var in arrays:
                raise ValidationError(
                    f"kernel {kernel.name!r}: loop variable {stmt.var!r} shadows another name"
                )
            inner = set(locals_)
            inner.add(stmt.var)
            _check_body(kernel, stmt.body, inner, arrays, scalars)
        else:
            raise ValidationError(f"kernel {kernel.name!r}: unknown statement {stmt!r}")
