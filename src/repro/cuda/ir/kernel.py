"""Kernel objects: parameters plus a per-thread body.

Array parameters are *shaped*: their extent along each dimension is an
affine expression over the scalar parameters (e.g. ``(n, n)`` for a square
matrix). The paper's code generator extracts exactly this information —
"the dimension sizes of all arrays in global memory" (Section 6) — to turn
multi-dimensional element coordinates into row-major byte ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.cuda.dtypes import DType, i64
from repro.cuda.ir.exprs import Expr
from repro.cuda.ir.stmts import Body
from repro.errors import ValidationError

__all__ = [
    "ScalarParam",
    "ArrayParam",
    "PartitionParam",
    "KernelParam",
    "Kernel",
    "PARTITION_FIELDS",
    "partition_field_name",
]

#: The six fields of the partition argument appended by the kernel
#: partitioning transform (Section 7): half-open block-index intervals for
#: each grid axis.
PARTITION_FIELDS = ("min_z", "max_z", "min_y", "max_y", "min_x", "max_x")


def partition_field_name(param_name: str, f: str) -> str:
    """Reserved scalar name carrying one partition field at execution time."""
    return f"__{param_name}_{f}"


@dataclass(frozen=True)
class ScalarParam:
    """A by-value scalar kernel argument."""

    name: str
    dtype: DType = i64

    @property
    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class ArrayParam:
    """A global-memory array argument (row-major).

    Attributes:
        name: parameter name.
        dtype: element type.
        shape: per-dimension extents as IR expressions over scalar params.
    """

    name: str
    dtype: DType
    shape: Tuple[Expr, ...]

    @property
    def is_array(self) -> bool:
        return True

    @property
    def ndim(self) -> int:
        return len(self.shape)


@dataclass(frozen=True)
class PartitionParam:
    """The partition argument appended to partitioned kernels (Section 7).

    At execution time it binds the six reserved scalars
    ``__<name>_min_z .. __<name>_max_x``.
    """

    name: str = "partition"

    @property
    def is_array(self) -> bool:
        return False

    def field_names(self) -> Tuple[str, ...]:
        return tuple(partition_field_name(self.name, f) for f in PARTITION_FIELDS)


KernelParam = Union[ScalarParam, ArrayParam, PartitionParam]


@dataclass(frozen=True)
class Kernel:
    """An immutable GPU kernel: name, parameters, per-thread body."""

    name: str
    params: Tuple[KernelParam, ...]
    body: Body

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate parameter names in kernel {self.name!r}")

    @property
    def array_params(self) -> Tuple[ArrayParam, ...]:
        return tuple(p for p in self.params if isinstance(p, ArrayParam))

    @property
    def scalar_params(self) -> Tuple[ScalarParam, ...]:
        return tuple(p for p in self.params if isinstance(p, ScalarParam))

    @property
    def partition_param(self) -> Optional[PartitionParam]:
        for p in self.params:
            if isinstance(p, PartitionParam):
                return p
        return None

    @property
    def is_partitioned(self) -> bool:
        return self.partition_param is not None

    def param(self, name: str) -> KernelParam:
        for p in self.params:
            if p.name == name:
                return p
        raise ValidationError(f"kernel {self.name!r} has no parameter {name!r}")

    def param_index(self, name: str) -> int:
        for i, p in enumerate(self.params):
            if p.name == name:
                return i
        raise ValidationError(f"kernel {self.name!r} has no parameter {name!r}")

    def __str__(self) -> str:
        from repro.cuda.ir.printer import kernel_to_cuda

        return kernel_to_cuda(self)
