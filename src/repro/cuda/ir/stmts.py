"""Statement nodes of the kernel IR.

A kernel body is a tuple of statements describing the program of *one*
thread. Control flow is structured (``If``/``For``); there is no ``goto``
and no early return — guards are expressed by wrapping the guarded code in
an ``If``, which is also what the access analysis needs to attach access
conditions to the polyhedral model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cuda.ir.exprs import Expr

__all__ = ["Stmt", "Let", "Assign", "Store", "If", "For", "Body"]


class Stmt:
    """Base class of IR statements."""

    __slots__ = ()


Body = Tuple["Stmt", ...]


@dataclass(frozen=True)
class Let(Stmt):
    """Bind a new local variable to the value of an expression."""

    name: str
    value: Expr


@dataclass(frozen=True)
class Assign(Stmt):
    """Rebind an existing local variable (used for loop accumulators)."""

    name: str
    value: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """Element store into a (row-major) array parameter."""

    array: str
    indices: Tuple[Expr, ...]
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """Structured conditional."""

    cond: Expr
    then: Body
    orelse: Body = ()


@dataclass(frozen=True)
class For(Stmt):
    """Counted loop ``for var in [lo, hi)`` over 64-bit integers."""

    var: str
    lo: Expr
    hi: Expr
    body: Body
