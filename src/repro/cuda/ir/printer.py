"""Rendering kernel IR as CUDA-C-like source.

Used for documentation, debugging, and as the device-side text the
source-to-source rewriter demo operates alongside. Multi-dimensional arrays
are printed with explicit row-major flattening, the way real CUDA kernels
subscript flat pointers.
"""

from __future__ import annotations

from typing import List

from repro.cuda.dtypes import DType, boolean, f32, f64, i32, i64
from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import ArrayParam, Kernel, PartitionParam, ScalarParam
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Store

__all__ = ["kernel_to_cuda", "expr_to_cuda"]

_CTYPES = {f32: "float", f64: "double", i32: "int", i64: "long long", boolean: "bool"}

_BINOP_SYMBOLS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "fdiv": "/",
    "mod": "%",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
    "and": "&&",
    "or": "||",
}


def expr_to_cuda(expr: Expr) -> str:
    """Render one IR expression as CUDA-C-like source."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if expr._dtype is f32:
            return f"{expr.value}f"
        return str(expr.value)
    if isinstance(expr, GridIdx):
        return f"{expr.register}.{expr.axis}"
    if isinstance(expr, (Param, LocalRef)):
        return expr.name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({expr_to_cuda(expr.lhs)}, {expr_to_cuda(expr.rhs)})"
        return f"({expr_to_cuda(expr.lhs)} {_BINOP_SYMBOLS[expr.op]} {expr_to_cuda(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"(-{expr_to_cuda(expr.operand)})" if expr.op == "neg" else f"(!{expr_to_cuda(expr.operand)})"
    if isinstance(expr, Call):
        args = ", ".join(expr_to_cuda(a) for a in expr.args)
        return f"{expr.fn}({args})"
    if isinstance(expr, Select):
        return (
            f"({expr_to_cuda(expr.cond)} ? {expr_to_cuda(expr.on_true)}"
            f" : {expr_to_cuda(expr.on_false)})"
        )
    if isinstance(expr, Load):
        return f"{expr.array}[{_flat_index(expr.array, expr.indices)}]"
    raise TypeError(f"unknown expression {expr!r}")


def _flat_index(array: str, indices) -> str:
    """Row-major flattened index expression ``((i0*d1 + i1)*d2 + i2)...``."""
    parts = [expr_to_cuda(i) for i in indices]
    if len(parts) == 1:
        return parts[0]
    out = parts[0]
    for k, p in enumerate(parts[1:], start=1):
        out = f"({out}) * {array}_dim{k} + {p}"
    return out


def _stmt_lines(stmt, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(stmt, Let):
        ctype = _CTYPES[stmt.value.dtype]
        lines.append(f"{pad}{ctype} {stmt.name} = {expr_to_cuda(stmt.value)};")
    elif isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.name} = {expr_to_cuda(stmt.value)};")
    elif isinstance(stmt, Store):
        lines.append(
            f"{pad}{stmt.array}[{_flat_index(stmt.array, stmt.indices)}] = "
            f"{expr_to_cuda(stmt.value)};"
        )
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({expr_to_cuda(stmt.cond)}) {{")
        for s in stmt.then:
            _stmt_lines(s, lines, indent + 1)
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for s in stmt.orelse:
                _stmt_lines(s, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, For):
        v = stmt.var
        lines.append(
            f"{pad}for (long long {v} = {expr_to_cuda(stmt.lo)}; "
            f"{v} < {expr_to_cuda(stmt.hi)}; ++{v}) {{"
        )
        for s in stmt.body:
            _stmt_lines(s, lines, indent + 1)
        lines.append(f"{pad}}}")
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def kernel_to_cuda(kernel: Kernel) -> str:
    """Render a kernel as CUDA-C-like source text."""
    params: List[str] = []
    for p in kernel.params:
        if isinstance(p, ArrayParam):
            params.append(f"{_CTYPES[p.dtype]}* {p.name}")
        elif isinstance(p, ScalarParam):
            params.append(f"{_CTYPES[p.dtype]} {p.name}")
        elif isinstance(p, PartitionParam):
            params.append(f"partition_t {p.name}")
    lines = [f"__global__ void {kernel.name}({', '.join(params)}) {{"]
    for stmt in kernel.body:
        _stmt_lines(stmt, lines, 1)
    lines.append("}")
    return "\n".join(lines) + "\n"
