"""Vectorized execution of mini-CUDA kernels."""

from repro.cuda.exec.interpreter import AccessTrace, eval_scalar_expr, run_kernel

__all__ = ["run_kernel", "eval_scalar_expr", "AccessTrace"]
