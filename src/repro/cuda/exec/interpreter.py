"""Vectorized numpy interpreter for mini-CUDA kernels.

The interpreter executes a kernel for every thread of a launch grid *at
once*: each IR expression evaluates to a numpy array over the flat lane
axis (one lane per thread). Structured control flow becomes lane masking —
``If`` narrows the active mask, loops with lane-varying bounds iterate over
the union range with per-lane activity. This follows the numpy-vectorization
idiom (no per-thread Python loops) while preserving CUDA's semantics:

* thread blocks are independent (nothing here synchronizes lanes);
* arrays are row-major and shared across all lanes;
* concurrent writes to one cell have no defined order (numpy fancy-index
  assignment keeps the last occurrence, a valid realization).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import DType, boolean, f64, i64
from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import ArrayParam, Kernel, PartitionParam
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Store
from repro.errors import ExecutionError

__all__ = ["run_kernel", "eval_scalar_expr", "AccessTrace"]


class AccessTrace:
    """Ground-truth access record of one launch (instrumented execution).

    Collects, per array argument, the set of *flattened* element indices
    actually loaded and stored by active threads. Used by the property
    tests to validate the polyhedral access analysis against reality, and
    by debug tooling to audit scanned write sets.

    With ``record_lanes=True`` the trace additionally keeps, per array and
    per written cell, the set of *lane ids* that stored to it (``writers``).
    Lane ids follow the interpreter's flat lane order — blocks in z,y,x-major
    order, then threads within the block. This is the replay hook the static
    race detector (:mod:`repro.analysis.replay`) uses to confirm that both
    threads of a witness really write the same cell.
    """

    def __init__(self, *, record_lanes: bool = False) -> None:
        self.reads: Dict[str, set] = {}
        self.writes: Dict[str, set] = {}
        self.record_lanes = record_lanes
        #: ``{array: {flat_cell_index: {lane_id, ...}}}`` (only populated
        #: when ``record_lanes`` is set).
        self.writers: Dict[str, Dict[int, set]] = {}
        self.readers: Dict[str, Dict[int, set]] = {}

    @staticmethod
    def _record_lanes(per_cell: Dict[int, set], flat_indices, lane_ids) -> None:
        cells = np.asarray(flat_indices).ravel().tolist()
        lanes = np.asarray(lane_ids).ravel().tolist()
        for cell, lane in zip(cells, lanes):
            per_cell.setdefault(int(cell), set()).add(int(lane))

    def record_read(self, array: str, flat_indices, lane_ids=None) -> None:
        self.reads.setdefault(array, set()).update(np.unique(flat_indices).tolist())
        if self.record_lanes and lane_ids is not None:
            self._record_lanes(self.readers.setdefault(array, {}), flat_indices, lane_ids)

    def record_write(self, array: str, flat_indices, lane_ids=None) -> None:
        self.writes.setdefault(array, set()).update(np.unique(flat_indices).tolist())
        if self.record_lanes and lane_ids is not None:
            self._record_lanes(self.writers.setdefault(array, {}), flat_indices, lane_ids)


class _Lanes:
    """Per-launch lane state: grid coordinates, arrays, locals, mask."""

    trace: Optional[AccessTrace] = None

    def __init__(self, grid: Dim3, block: Dim3) -> None:
        gz, gy, gx = grid.zyx()
        bz, by, bx = block.zyx()
        # Lane order: blocks in z,y,x-major order, then threads within block.
        coords = np.indices((gz, gy, gx, bz, by, bx), dtype=np.int64)
        flat = coords.reshape(6, -1)
        self.block_idx = {"z": flat[0], "y": flat[1], "x": flat[2]}
        self.thread_idx = {"z": flat[3], "y": flat[4], "x": flat[5]}
        self.block_dim = {"z": bz, "y": by, "x": bx}
        self.grid_dim = {"z": gz, "y": gy, "x": gx}
        self.n = flat.shape[1]


class _Frame:
    """Name bindings for the current launch (params, locals, loop vars).

    Scoping is handled by snapshotting the bound names around nested bodies:
    names introduced inside (``Let``, loop variables) are dropped on exit,
    while masked ``Assign`` updates to pre-existing locals persist.
    """

    def __init__(self, values: Dict[str, object]) -> None:
        self.values = values


def _np_const(value, dtype: DType):
    return np.asarray(value, dtype=dtype.to_numpy())[()]


def _eval(expr: Expr, lanes: _Lanes, frame: _Frame, mask: Optional[np.ndarray]):
    if isinstance(expr, Const):
        return _np_const(expr.value, expr._dtype)
    if isinstance(expr, GridIdx):
        if expr.register == "threadIdx":
            return lanes.thread_idx[expr.axis]
        if expr.register == "blockIdx":
            return lanes.block_idx[expr.axis]
        if expr.register == "blockDim":
            return np.int64(lanes.block_dim[expr.axis])
        if expr.register == "gridDim":
            return np.int64(lanes.grid_dim[expr.axis])
        # blockOff.w == blockIdx.w * blockDim.w (Section 4.1).
        return lanes.block_idx[expr.axis] * np.int64(lanes.block_dim[expr.axis])
    if isinstance(expr, (Param, LocalRef)):
        try:
            return frame.values[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound name {expr.name!r} during execution") from None
    if isinstance(expr, BinOp):
        a = _eval(expr.lhs, lanes, frame, mask)
        b = _eval(expr.rhs, lanes, frame, mask)
        return _binop(expr.op, a, b)
    if isinstance(expr, UnOp):
        v = _eval(expr.operand, lanes, frame, mask)
        return np.logical_not(v) if expr.op == "not" else -v
    if isinstance(expr, Call):
        args = [_eval(a, lanes, frame, mask) for a in expr.args]
        return _call(expr.fn, args)
    if isinstance(expr, Select):
        c = _eval(expr.cond, lanes, frame, mask)
        t = _eval(expr.on_true, lanes, frame, mask)
        f = _eval(expr.on_false, lanes, frame, mask)
        return np.where(c, t, f)
    if isinstance(expr, Load):
        return _load(expr, lanes, frame, mask)
    raise ExecutionError(f"unknown expression node {expr!r}")


def _binop(op: str, a, b):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        # Float division for floats; floor division for integers (the IR's
        # kernels use explicit fdiv for index math, so this path is rare).
        if np.asarray(a).dtype.kind == "f" or np.asarray(b).dtype.kind == "f":
            return a / b
        return a // b
    if op == "fdiv":
        return a // b
    if op == "mod":
        return a % b
    if op == "min":
        return np.minimum(a, b)
    if op == "max":
        return np.maximum(a, b)
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "and":
        return np.logical_and(a, b)
    if op == "or":
        return np.logical_or(a, b)
    raise ExecutionError(f"unknown binary op {op!r}")


def _call(fn: str, args):
    if fn == "sqrt":
        return np.sqrt(args[0])
    if fn == "rsqrt":
        return np.reciprocal(np.sqrt(args[0]))
    if fn == "abs":
        return np.abs(args[0])
    if fn == "exp":
        return np.exp(args[0])
    if fn == "log":
        return np.log(args[0])
    if fn == "pow":
        return np.power(args[0], args[1])
    if fn == "floor":
        return np.floor(args[0])
    raise ExecutionError(f"unknown math function {fn!r}")


def _index_lanes(indices, lanes: _Lanes, frame: _Frame, mask, shape) -> Tuple[np.ndarray, ...]:
    """Evaluate index expressions, broadcast to lanes, validate active lanes."""
    idx_arrays = []
    for d, idx_expr in enumerate(indices):
        idx = np.asarray(_eval(idx_expr, lanes, frame, mask))
        idx_b = np.broadcast_to(idx, (lanes.n,)) if idx.ndim == 0 else idx
        bad = (idx_b < 0) | (idx_b >= shape[d])
        if mask is not None:
            bad = bad & mask
        if np.any(bad):
            lane = int(np.argmax(bad))
            raise ExecutionError(
                f"out-of-bounds index {int(idx_b[lane])} in dim {d} (extent {shape[d]})"
            )
        idx_arrays.append(idx_b)
    return tuple(idx_arrays)


def _load(expr: Load, lanes: _Lanes, frame: _Frame, mask):
    arr = frame.values.get(expr.array)
    if not isinstance(arr, np.ndarray):
        raise ExecutionError(f"array argument {expr.array!r} is not bound to an ndarray")
    if mask is None:
        idx = _index_lanes(expr.indices, lanes, frame, mask, arr.shape)
        if lanes.trace is not None:
            flat = np.ravel_multi_index(
                tuple(np.broadcast_to(i, (lanes.n,)) for i in idx), arr.shape
            )
            lanes.trace.record_read(expr.array, flat, np.arange(lanes.n))
        return arr[idx]
    safe = []
    for d, idx_expr in enumerate(expr.indices):
        idx = np.asarray(_eval(idx_expr, lanes, frame, mask))
        idx_b = np.broadcast_to(idx, (lanes.n,)) if idx.ndim == 0 else idx
        bad = ((idx_b < 0) | (idx_b >= arr.shape[d])) & mask
        if np.any(bad):
            lane = int(np.argmax(bad))
            raise ExecutionError(
                f"out-of-bounds index {int(idx_b[lane])} in dim {d} (extent {arr.shape[d]})"
            )
        safe.append(np.where(mask, idx_b, 0))
    if lanes.trace is not None and np.any(mask):
        flat = np.ravel_multi_index(tuple(s[mask] for s in safe), arr.shape)
        lanes.trace.record_read(expr.array, flat, np.nonzero(mask)[0])
    values = arr[tuple(safe)]
    # Inactive lanes read element 0; callers only consume them under `mask`.
    return values


def _store(stmt: Store, lanes: _Lanes, frame: _Frame, mask) -> None:
    arr = frame.values.get(stmt.array)
    if not isinstance(arr, np.ndarray):
        raise ExecutionError(f"array argument {stmt.array!r} is not bound to an ndarray")
    value = np.asarray(_eval(stmt.value, lanes, frame, mask), dtype=arr.dtype)
    value_b = np.broadcast_to(value, (lanes.n,)) if value.ndim == 0 else value
    if mask is None:
        idx = _index_lanes(stmt.indices, lanes, frame, mask, arr.shape)
        if lanes.trace is not None:
            flat = np.ravel_multi_index(
                tuple(np.broadcast_to(i, (lanes.n,)) for i in idx), arr.shape
            )
            lanes.trace.record_write(stmt.array, flat, np.arange(lanes.n))
        arr[idx] = value_b
        return
    if not np.any(mask):
        return
    idx_full = []
    for d, idx_expr in enumerate(stmt.indices):
        idx = np.asarray(_eval(idx_expr, lanes, frame, mask))
        idx_b = np.broadcast_to(idx, (lanes.n,)) if idx.ndim == 0 else idx
        bad = ((idx_b < 0) | (idx_b >= arr.shape[d])) & mask
        if np.any(bad):
            lane = int(np.argmax(bad))
            raise ExecutionError(
                f"out-of-bounds store index {int(idx_b[lane])} in dim {d} "
                f"(extent {arr.shape[d]})"
            )
        idx_full.append(idx_b[mask])
    if lanes.trace is not None:
        flat = np.ravel_multi_index(tuple(idx_full), arr.shape)
        lanes.trace.record_write(stmt.array, flat, np.nonzero(mask)[0])
    arr[tuple(idx_full)] = value_b[mask]


def _run_body(body: Body, lanes: _Lanes, frame: _Frame, mask) -> None:
    for stmt in body:
        if isinstance(stmt, Let):
            frame.values[stmt.name] = _eval(stmt.value, lanes, frame, mask)
        elif isinstance(stmt, Assign):
            new = _eval(stmt.value, lanes, frame, mask)
            old = frame.values[stmt.name]
            if mask is None:
                frame.values[stmt.name] = new
            else:
                frame.values[stmt.name] = np.where(mask, new, old)
        elif isinstance(stmt, Store):
            _store(stmt, lanes, frame, mask)
        elif isinstance(stmt, If):
            cond = np.asarray(_eval(stmt.cond, lanes, frame, mask))
            cond_b = np.broadcast_to(cond, (lanes.n,)) if cond.ndim == 0 else cond
            then_mask = cond_b if mask is None else (mask & cond_b)
            if np.any(then_mask):
                _run_scoped(stmt.then, lanes, frame, then_mask)
            if stmt.orelse:
                else_mask = ~cond_b if mask is None else (mask & ~cond_b)
                if np.any(else_mask):
                    _run_scoped(stmt.orelse, lanes, frame, else_mask)
        elif isinstance(stmt, For):
            _run_for(stmt, lanes, frame, mask)
        else:
            raise ExecutionError(f"unknown statement {stmt!r}")


def _run_scoped(body: Body, lanes: _Lanes, frame: _Frame, mask) -> None:
    """Run a nested body; drop names it introduced, keep Assign updates."""
    before = set(frame.values)
    _run_body(body, lanes, frame, mask)
    for name in set(frame.values) - before:
        del frame.values[name]


def _run_for(stmt: For, lanes: _Lanes, frame: _Frame, mask) -> None:
    lo = np.asarray(_eval(stmt.lo, lanes, frame, mask))
    hi = np.asarray(_eval(stmt.hi, lanes, frame, mask))
    before = set(frame.values)
    if lo.ndim == 0 and hi.ndim == 0:
        # Uniform trip count: plain sequential loop, fully vectorized body.
        for k in range(int(lo), int(hi)):
            frame.values[stmt.var] = np.int64(k)
            _run_body(stmt.body, lanes, frame, mask)
    else:
        # Lane-varying bounds: iterate the union range with per-lane masking.
        lo_b = np.broadcast_to(lo, (lanes.n,))
        hi_b = np.broadcast_to(hi, (lanes.n,))
        active = mask if mask is not None else np.ones(lanes.n, dtype=bool)
        if np.any(hi_b[active] > lo_b[active]):
            k_min = int(lo_b[active].min())
            k_max = int(hi_b[active].max())
            for k in range(k_min, k_max):
                lane_mask = active & (lo_b <= k) & (k < hi_b)
                if not np.any(lane_mask):
                    continue
                frame.values[stmt.var] = np.int64(k)
                _run_body(stmt.body, lanes, frame, lane_mask)
    for name in set(frame.values) - before:
        del frame.values[name]


def run_kernel(
    kernel: Kernel,
    grid,
    block,
    args: Mapping[str, object],
    *,
    trace: Optional[AccessTrace] = None,
) -> None:
    """Execute a kernel over a full launch grid.

    ``args`` binds every parameter name: array params to shaped numpy arrays
    (mutated in place by stores), scalar params to numbers, and — for
    partitioned kernels — the six reserved partition scalars.

    Pass an :class:`AccessTrace` to record the ground-truth element indices
    every active thread loads and stores (instrumented execution).
    """
    grid = Dim3.of(grid)
    block = Dim3.of(block)
    lanes = _Lanes(grid, block)
    lanes.trace = trace
    values: Dict[str, object] = {}
    for p in kernel.params:
        if isinstance(p, PartitionParam):
            for f in p.field_names():
                if f not in args:
                    raise ExecutionError(f"partitioned kernel launch missing field {f!r}")
                values[f] = np.int64(args[f])
        else:
            if p.name not in args:
                raise ExecutionError(f"kernel launch missing argument {p.name!r}")
            v = args[p.name]
            if isinstance(p, ArrayParam):
                if not isinstance(v, np.ndarray) or v.ndim != p.ndim:
                    raise ExecutionError(
                        f"argument {p.name!r} must be a {p.ndim}-d ndarray, got {type(v)}"
                    )
                values[p.name] = v
            else:
                values[p.name] = _np_const(v, p.dtype)
    _run_body(kernel.body, lanes, _Frame(values), None)


def eval_scalar_expr(expr: Expr, scalars: Mapping[str, object]):
    """Evaluate an expression that references only scalar parameters.

    Used for array shape expressions and loop trip counts at launch time.
    """
    lanes = _Lanes(Dim3(1), Dim3(1))
    frame = _Frame({k: np.asarray(v)[()] for k, v in scalars.items()})
    value = _eval(expr, lanes, frame, None)
    return np.asarray(value)[()]
