"""Simulated GPU devices and device pointers.

A :class:`Device` owns allocations as flat byte buffers (numpy ``uint8``
arrays); kernels and memcopies obtain typed, shaped *views* of them — never
copies — mirroring how CUDA kernels reinterpret raw pointers. In timing-only
mode (used for paper-scale performance runs) allocations are bookkept but
not materialized, so a 16-device × multi-GiB configuration fits in memory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.constants import HOST
from repro.errors import RuntimeApiError

__all__ = ["Device", "DevPtr", "HOST"]


@dataclass(frozen=True)
class DevPtr:
    """An opaque device-memory handle returned by ``cudaMalloc``."""

    device_id: int
    alloc_id: int
    nbytes: int


class Device:
    """One simulated GPU: an id plus a set of byte-buffer allocations."""

    def __init__(self, device_id: int, *, functional: bool = True) -> None:
        self.device_id = device_id
        self.functional = functional
        self._allocs: Dict[int, Optional[np.ndarray]] = {}
        self._sizes: Dict[int, int] = {}
        self._ids = itertools.count(1)
        self.bytes_allocated = 0

    def alloc(self, nbytes: int) -> DevPtr:
        """Allocate ``nbytes`` of device memory."""
        if nbytes <= 0:
            raise RuntimeApiError(f"cudaMalloc of non-positive size {nbytes}")
        alloc_id = next(self._ids)
        self._allocs[alloc_id] = np.zeros(nbytes, dtype=np.uint8) if self.functional else None
        self._sizes[alloc_id] = nbytes
        self.bytes_allocated += nbytes
        return DevPtr(self.device_id, alloc_id, nbytes)

    def free(self, ptr: DevPtr) -> None:
        self._check(ptr)
        self.bytes_allocated -= self._sizes.pop(ptr.alloc_id)
        del self._allocs[ptr.alloc_id]

    def _check(self, ptr: DevPtr) -> None:
        if ptr.device_id != self.device_id:
            raise RuntimeApiError(
                f"pointer for device {ptr.device_id} used on device {self.device_id}"
            )
        if ptr.alloc_id not in self._allocs:
            raise RuntimeApiError(f"use of freed or unknown allocation {ptr.alloc_id}")

    def bytes_view(self, ptr: DevPtr) -> np.ndarray:
        """The allocation's raw bytes (a mutable view, never a copy)."""
        self._check(ptr)
        buf = self._allocs[ptr.alloc_id]
        if buf is None:
            raise RuntimeApiError(
                "byte access to a timing-only allocation (device is not functional)"
            )
        return buf

    def typed_view(self, ptr: DevPtr, np_dtype: np.dtype, shape: Tuple[int, ...]) -> np.ndarray:
        """A shaped, typed view of the allocation's leading bytes."""
        count = int(np.prod(shape)) if shape else 1
        need = count * np_dtype.itemsize
        if need > ptr.nbytes:
            raise RuntimeApiError(
                f"allocation of {ptr.nbytes} bytes viewed as {shape} x {np_dtype} "
                f"({need} bytes)"
            )
        return self.bytes_view(ptr)[:need].view(np_dtype).reshape(shape)
