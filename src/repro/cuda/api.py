"""The single-device CUDA Runtime style API (the paper's baseline).

Host programs in this reproduction are Python callables written against
this interface. The multi-GPU runtime library
(:mod:`repro.runtime.api`) provides the *same prototypes* — the paper's
Section 8.4 design ("identical prototypes to ease code transformation") —
so one host program runs unmodified against either implementation.

An api object can run *functionally* (kernels really execute on simulated
device memory; used for correctness validation) and/or *timed* (operations
are costed on a :class:`repro.sim.SimMachine`; used for the paper-scale
performance experiments). Both can be active at once.
"""

from __future__ import annotations

import enum
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.cuda.device import HOST, DevPtr, Device
from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import eval_scalar_expr, run_kernel
from repro.cuda.ir.kernel import ArrayParam, Kernel, PartitionParam, ScalarParam
from repro.errors import RuntimeApiError, UnsupportedMemcpyError
from repro.sim.engine import SimMachine
from repro.sim.trace import Category

__all__ = ["MemcpyKind", "CudaApi", "KernelCostFn", "host_bytes"]


class MemcpyKind(enum.Enum):
    """Direction argument of ``cudaMemcpy`` (mirrors ``cudaMemcpyKind``)."""

    HostToDevice = "H2D"
    DeviceToHost = "D2H"
    DeviceToDevice = "D2D"
    HostToHost = "H2H"


#: Models the on-device execution time of one kernel launch:
#: ``fn(kernel, n_blocks, block, scalars) -> seconds``.
KernelCostFn = Callable[[Kernel, int, Dim3, Mapping[str, object]], float]


def host_bytes(array: np.ndarray) -> np.ndarray:
    """A flat uint8 view of a host array (must be C-contiguous)."""
    if not isinstance(array, np.ndarray):
        raise RuntimeApiError(f"host buffer must be an ndarray, got {type(array).__name__}")
    if not array.flags.c_contiguous:
        raise RuntimeApiError("host buffers must be C-contiguous")
    return array.reshape(-1).view(np.uint8)


def resolve_array_shapes(
    kernel: Kernel, scalars: Mapping[str, object]
) -> Mapping[str, tuple]:
    """Concrete shapes of all array params given the scalar arguments."""
    shapes = {}
    for p in kernel.array_params:
        shape = tuple(int(eval_scalar_expr(e, scalars)) for e in p.shape)
        if any(s <= 0 for s in shape):
            raise RuntimeApiError(f"array {p.name!r} has non-positive extent {shape}")
        shapes[p.name] = shape
    return shapes


def split_launch_args(kernel: Kernel, args: Sequence[object]):
    """Split positional launch arguments into (name->value, scalar map)."""
    params = [p for p in kernel.params if not isinstance(p, PartitionParam)]
    if len(args) != len(params):
        raise RuntimeApiError(
            f"kernel {kernel.name!r} takes {len(params)} arguments, got {len(args)}"
        )
    by_name = {}
    scalars = {}
    for p, a in zip(params, args):
        by_name[p.name] = a
        if isinstance(p, ScalarParam):
            scalars[p.name] = a
    return by_name, scalars


class CudaApi:
    """Single-device reference implementation (what an nvcc binary does)."""

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        machine: Optional[SimMachine] = None,
        kernel_cost: Optional[KernelCostFn] = None,
        functional: bool = True,
    ) -> None:
        self.device = device if device is not None else Device(0, functional=functional)
        self.machine = machine
        self.kernel_cost = kernel_cost
        self.functional = functional and self.device.functional

    # -- memory management ------------------------------------------------------

    def cudaMalloc(self, nbytes: int) -> DevPtr:
        return self.device.alloc(nbytes)

    def cudaFree(self, ptr: DevPtr) -> None:
        self.device.free(ptr)

    def cudaMemset(self, ptr: DevPtr, value: int, nbytes: int) -> None:
        """Fill the first ``nbytes`` of a device allocation with a byte value."""
        if self.functional:
            self.device.bytes_view(ptr)[:nbytes] = value & 0xFF
        if self.machine:
            duration = nbytes / self.machine.spec.mem_bw_per_gpu
            self.machine.launch_kernel(self.device.device_id, duration, label="memset")

    # -- memcpy -------------------------------------------------------------------

    def cudaMemcpy(self, dst, src, nbytes: int, kind: MemcpyKind) -> None:
        self._memcpy(dst, src, nbytes, kind, synchronous=True)

    def cudaMemcpyAsync(self, dst, src, nbytes: int, kind: MemcpyKind) -> None:
        self._memcpy(dst, src, nbytes, kind, synchronous=False)

    def _memcpy(self, dst, src, nbytes, kind, *, synchronous):
        if kind is MemcpyKind.HostToDevice:
            if self.functional:
                self.device.bytes_view(dst)[:nbytes] = host_bytes(src)[:nbytes]
            if self.machine:
                self.machine.transfer(
                    HOST, self.device.device_id, nbytes, label="h2d", synchronous=synchronous
                )
        elif kind is MemcpyKind.DeviceToHost:
            if self.functional:
                host_bytes(dst)[:nbytes] = self.device.bytes_view(src)[:nbytes]
            if self.machine:
                self.machine.transfer(
                    self.device.device_id, HOST, nbytes, label="d2h", synchronous=synchronous
                )
        elif kind is MemcpyKind.DeviceToDevice:
            if self.functional:
                self.device.bytes_view(dst)[:nbytes] = self.device.bytes_view(src)[:nbytes]
            if self.machine:
                self.machine.transfer(
                    self.device.device_id,
                    self.device.device_id,
                    nbytes,
                    label="d2d",
                    synchronous=synchronous,
                )
        elif kind is MemcpyKind.HostToHost:
            host_bytes(dst)[:nbytes] = host_bytes(src)[:nbytes]
        else:
            raise UnsupportedMemcpyError(f"unknown memcpy kind {kind!r}")

    # -- kernel launch -----------------------------------------------------------------

    def launch(self, kernel: Kernel, grid, block, args: Sequence[object]) -> None:
        """``kernel<<<grid, block>>>(args...)``."""
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        by_name, scalars = split_launch_args(kernel, args)
        if self.functional:
            shapes = resolve_array_shapes(kernel, scalars)
            bound = {}
            for p in kernel.params:
                if isinstance(p, ArrayParam):
                    ptr = by_name[p.name]
                    if not isinstance(ptr, DevPtr):
                        raise RuntimeApiError(
                            f"array argument {p.name!r} must be a DevPtr, got {type(ptr)}"
                        )
                    bound[p.name] = self.device.typed_view(
                        ptr, p.dtype.to_numpy(), shapes[p.name]
                    )
                elif isinstance(p, ScalarParam):
                    bound[p.name] = by_name[p.name]
            run_kernel(kernel, grid, block, bound)
        if self.machine:
            duration = 0.0
            if self.kernel_cost is not None:
                duration = self.kernel_cost(kernel, grid.volume, block, scalars)
            self.machine.launch_kernel(self.device.device_id, duration, label=kernel.name)

    # -- misc ---------------------------------------------------------------------------

    def cudaGetDeviceCount(self) -> int:
        return 1

    def cudaDeviceSynchronize(self) -> None:
        if self.machine:
            self.machine.synchronize([self.device.device_id])

    def elapsed(self) -> float:
        """Simulated wall-clock consumed so far (0.0 without a machine)."""
        return self.machine.elapsed() if self.machine else 0.0
