"""Scalar data types for the mini-CUDA IR."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DType", "f32", "f64", "i32", "i64", "boolean", "promote"]


@dataclass(frozen=True)
class DType:
    """A scalar type: name, byte size, and numpy equivalent."""

    name: str
    size: int
    np_dtype: str
    is_float: bool

    def to_numpy(self) -> np.dtype:
        return np.dtype(self.np_dtype)

    def __str__(self) -> str:
        return self.name


f32 = DType("f32", 4, "float32", True)
f64 = DType("f64", 8, "float64", True)
i32 = DType("i32", 4, "int32", False)
i64 = DType("i64", 8, "int64", False)
boolean = DType("bool", 1, "bool", False)

_RANK = {boolean: 0, i32: 1, i64: 2, f32: 3, f64: 4}


def promote(a: DType, b: DType) -> DType:
    """C-like arithmetic promotion between two scalar types."""
    return a if _RANK[a] >= _RANK[b] else b
