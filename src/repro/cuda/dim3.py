"""CUDA's ``dim3`` launch-configuration triple."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = ["Dim3", "AXES"]

#: Grid axes in CUDA declaration order; ``z`` is the slowest-varying.
AXES = ("z", "y", "x")


@dataclass(frozen=True)
class Dim3:
    """A 3-D extent ``(x, y, z)``; unspecified components default to 1."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in ("x", "y", "z"):
            v = getattr(self, axis)
            if not isinstance(v, int) or v < 1:
                raise ValueError(f"dim3.{axis} must be a positive integer, got {v!r}")

    @staticmethod
    def of(value: Union[int, Tuple[int, ...], "Dim3"]) -> "Dim3":
        """Coerce an int, (x[, y[, z]]) tuple, or Dim3 into a Dim3."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return Dim3(value)
        return Dim3(*value)

    @property
    def volume(self) -> int:
        return self.x * self.y * self.z

    def axis(self, name: str) -> int:
        """Component by axis name ('x', 'y' or 'z')."""
        return getattr(self, name)

    def zyx(self) -> Tuple[int, int, int]:
        """Components ordered slowest-varying first (z, y, x)."""
        return (self.z, self.y, self.x)

    def __iter__(self) -> Iterator[int]:
        return iter((self.x, self.y, self.z))

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"
