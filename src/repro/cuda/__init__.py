"""``repro.cuda`` — a miniature CUDA substrate.

The paper's toolchain operates on real CUDA via LLVM; this package provides
the equivalent surface for the reproduction:

* :mod:`~repro.cuda.ir` — a typed kernel IR with CUDA's grid intrinsics
  (``threadIdx``/``blockIdx``/``blockDim``/``gridDim``), a builder DSL, a
  validator and a CUDA-C-like printer;
* :mod:`~repro.cuda.exec` — a vectorized numpy interpreter that executes a
  kernel over (a partition of) its launch grid with CUDA semantics:
  independent thread blocks, row-major arrays, last-write-wins stores;
* :mod:`~repro.cuda.device` / :mod:`~repro.cuda.api` — simulated devices and
  a single-device CUDA Runtime style API (the baseline an "nvcc binary"
  would target).
"""

from repro.cuda.dtypes import DType, f32, f64, i32, i64, boolean
from repro.cuda.dim3 import Dim3
from repro.cuda.device import Device, DevPtr
from repro.cuda.api import CudaApi, MemcpyKind

__all__ = [
    "DType",
    "f32",
    "f64",
    "i32",
    "i64",
    "boolean",
    "Dim3",
    "Device",
    "DevPtr",
    "CudaApi",
    "MemcpyKind",
]
