"""Figure 6: speedup of the three benchmarks for up to 16 GPUs.

Regenerates the paper's nine speedup curves (3 workloads x 3 sizes over
1..16 GPUs) on the simulated K80 node and checks the qualitative claims:

* N-Body scales best, reaching its maximum (~12.4x in the paper) at 16 GPUs;
* Matmul is capped (~6.3x at 14 GPUs in the paper) by the one-shot
  redistribution of B and *declines* after its peak;
* Hotspot's small problem is overhead-bound and peaks well before 16 GPUs;
* larger problems scale better than smaller ones for every workload.
"""

import pytest

from repro.harness.calibration import GPU_COUNTS
from repro.harness.experiments import figure6
from repro.harness.paper import MAX_SPEEDUP, MAX_SPEEDUP_GPUS
from repro.harness.report import ascii_series, format_table


@pytest.fixture(scope="module")
def points(benchmark_disabled=None):
    return None


def test_figure6(benchmark, write_report):
    pts = benchmark.pedantic(figure6, rounds=1, iterations=1)

    rows = []
    series = {}
    for p in pts:
        rows.append((p.workload, p.size_label, p.n_gpus, p.time, p.speedup))
        series.setdefault(f"{p.workload}/{p.size_label}", {})[p.n_gpus] = p.speedup
    text = format_table(
        ["Workload", "Size", "GPUs", "Time [s]", "Speedup"],
        rows,
        title="Figure 6: Speedup of the benchmarks for up to 16 GPUs",
    )
    text += "\n" + ascii_series(series, title="Speedup curves", y_label="x")

    best = {}
    for p in pts:
        cur = best.get(p.workload)
        if cur is None or p.speedup > cur[1]:
            best[p.workload] = (p.n_gpus, p.speedup)
    text += "\nPaper-vs-measured maxima:\n"
    for wl in ("hotspot", "nbody", "matmul"):
        g, s = best[wl]
        text += (
            f"  {wl:8s} paper {MAX_SPEEDUP[wl]:5.1f}x @ {MAX_SPEEDUP_GPUS[wl]:2d} GPUs"
            f"   measured {s:5.2f}x @ {g:2d} GPUs\n"
        )
    write_report("figure6.txt", text)

    # --- shape assertions -------------------------------------------------
    def curve(wl, size):
        return series[f"{wl}/{size}"]

    # 1 GPU is the baseline everywhere (within orchestration overhead).
    for key, ys in series.items():
        assert 0.9 <= ys[1] <= 1.01, (key, ys[1])

    # N-Body (large) is the best scaler and peaks at 16 GPUs (paper: 12.4x @16).
    nb = curve("nbody", "large")
    assert best["nbody"][1] == max(v for k in ("small", "medium", "large") for v in curve("nbody", k).values())
    assert nb[16] == max(nb.values())
    assert 9.0 <= nb[16] <= 15.0

    # Matmul peaks before 16 and declines after (paper: 6.3x @14).
    mm = curve("matmul", "large")
    peak_g = max(mm, key=mm.get)
    assert peak_g <= 14
    assert mm[16] < mm[peak_g]
    assert 4.0 <= mm[peak_g] <= 8.0

    # Hotspot small is overhead-bound: peaks at <= 12 GPUs and declines.
    hs = curve("hotspot", "small")
    peak_g = max(hs, key=hs.get)
    assert peak_g <= 12
    assert hs[16] < hs[peak_g]

    # Larger problems scale at least as well as smaller ones at 16 GPUs.
    for wl in ("hotspot", "nbody", "matmul"):
        assert curve(wl, "large")[16] >= curve(wl, "medium")[16] >= curve(wl, "small")[16]

    # Who wins: nbody > matmul at their maxima; hotspot beats matmul (the
    # paper's ordering 12.4 > 7.1 > 6.3 holds for the best curves).
    assert best["nbody"][1] > best["matmul"][1]
    assert best["hotspot"][1] > best["matmul"][1]
