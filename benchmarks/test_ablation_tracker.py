"""Ablation: B-tree segment tracker vs a flat-list tracker (§8.1).

The paper bases its tracker on a B-tree map; this ablation compares it with
the obvious alternative (a sorted Python list with linear splicing) on a
fragmentation-heavy workload, and also measures the batched update path.
"""

import random
from bisect import bisect_right

import pytest

from repro.runtime.tracker import SegmentTracker


class ListTracker:
    """Reference tracker: sorted (start, end, owner) list, linear updates."""

    def __init__(self, size, initial_owner=0):
        self.size = size
        self.segments = [(0, size, initial_owner)]

    def update(self, lo, hi, owner):
        if lo >= hi:
            return
        out = []
        for s, e, o in self.segments:
            if e <= lo or s >= hi:
                out.append((s, e, o))
            else:
                if s < lo:
                    out.append((s, lo, o))
                if e > hi:
                    out.append((hi, e, o))
        out.append((lo, hi, owner))
        out.sort()
        merged = [out[0]]
        for s, e, o in out[1:]:
            ls, le, lo_ = merged[-1]
            if o == lo_ and s == le:
                merged[-1] = (ls, e, o)
            else:
                merged.append((s, e, o))
        self.segments = merged

    def query(self, lo, hi):
        return [
            (max(s, lo), min(e, hi), o)
            for s, e, o in self.segments
            if e > lo and s < hi
        ]


def _workload(ops=400, size=1 << 20, owners=16, seed=5):
    rng = random.Random(seed)
    out = []
    for _ in range(ops):
        lo = rng.randrange(0, size)
        hi = min(size, lo + rng.randrange(1, size // 64))
        out.append((lo, hi, rng.randrange(owners)))
    return out, size


def test_btree_tracker(benchmark):
    ops, size = _workload()

    def run():
        tr = SegmentTracker(size, 0)
        for lo, hi, owner in ops:
            tr.update(lo, hi, owner)
            tr.query(max(0, lo - 64), min(size, hi + 64))
        return tr.n_segments

    segs = benchmark(run)
    assert segs > 1


def test_list_tracker(benchmark):
    ops, size = _workload()

    def run():
        tr = ListTracker(size, 0)
        for lo, hi, owner in ops:
            tr.update(lo, hi, owner)
            tr.query(max(0, lo - 64), min(size, hi + 64))
        return len(tr.segments)

    segs = benchmark(run)
    assert segs > 1


def test_batched_update_many(benchmark):
    """The runtime's hot path: thousands of per-row ranges per call."""
    size = 1 << 22
    ranges = [(r * 4096 + 4, r * 4096 + 4092) for r in range(1024)]

    def run():
        tr = SegmentTracker(size, 0)
        for gpu in range(4):
            tr.update_many(ranges[gpu * 256 : (gpu + 1) * 256], gpu)
        return tr.n_segments

    segs = benchmark(run)
    assert segs >= 4


def test_trackers_agree():
    ops, size = _workload(ops=150, size=4096)
    a = SegmentTracker(size, 0)
    b = ListTracker(size, 0)
    for lo, hi, owner in ops:
        a.update(lo, hi, owner)
        b.update(lo, hi, owner)
    assert [(s.start, s.end, s.owner) for s in a.segments()] == b.segments
