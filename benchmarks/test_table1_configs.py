"""Table 1: configurations of the benchmark applications."""

from repro.harness.experiments import table1_rows
from repro.harness.report import format_table


def test_table1(benchmark, write_report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    text = format_table(
        ["Benchmark", "Small", "Medium", "Large", "Iterations"],
        rows,
        title="Table 1: Configurations of the benchmark applications",
    )
    write_report("table1.txt", text)
    assert ("hotspot", 8192, 16384, 36864, "1500") in rows
    assert ("nbody", 65536, 131072, 327680, "96") in rows
    assert ("matmul", 8192, 16384, 30656, "N/A") in rows
