"""Ablation: per-convex-piece union scanning vs a bounding-hull scan (§6.1).

"For a union of sets, the over-approximation can be eliminated by applying
this approach to each convex set of the union instead of the union set
itself." This ablation quantifies the over-approximation a hull scan would
introduce for a kernel whose access set is a union of two distant bands.
"""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.enumerators import build_enumerator, merge_ranges
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder


def _banded_kernel():
    """Reads two distant bands of the input (union with a large gap)."""
    kb = KernelBuilder("banded")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[gi,] = kb.select(gi < n // 1 if False else gi < 8, src[gi,], src[gi,])
    return kb.finish()


def _two_reads_kernel():
    kb = KernelBuilder("tworeads")
    n = kb.scalar("n")
    src = kb.array("src", f32, (4 * n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[gi,] = src[gi,] + src[gi + 3 * n,]  # bands [0,n) and [3n,4n)
    return kb.finish()


@pytest.fixture(scope="module")
def enum_setup():
    kernel = _two_reads_kernel()
    info = analyze_kernel(kernel)
    enum = build_enumerator(info, "src", "read")
    grid, block = Dim3(8), Dim3(32)
    part = Partition.whole(grid)
    n = 256
    return enum, part, block, grid, {"n": n}, n


def test_union_scan_is_exact(benchmark, enum_setup, write_report):
    enum, part, block, grid, scalars, n = enum_setup

    def run():
        enum._cache.clear()
        return enum.element_ranges(part, block, grid, scalars, (4 * n,))

    ranges, emitted = benchmark(run)
    exact_bytes = sum(hi - lo for lo, hi in ranges) * 4
    hull = (min(lo for lo, _ in ranges), max(hi for _, hi in ranges))
    hull_bytes = (hull[1] - hull[0]) * 4
    text = (
        "Ablation: union scanning vs bounding hull (two bands, gap of 2n)\n"
        f"  per-piece scan: {exact_bytes} bytes across {len(ranges)} ranges\n"
        f"  bounding hull:  {hull_bytes} bytes (over-approximation "
        f"{hull_bytes / exact_bytes:.2f}x)\n"
    )
    write_report("ablation_union_scan.txt", text)
    # Two disjoint bands of n elements each.
    assert ranges == [(0, n), (3 * n, 4 * n)]
    # The hull would transfer ~2x the necessary data.
    assert hull_bytes >= 1.9 * exact_bytes
