"""Cluster-scaling experiment: equal total GPUs across node/GPU shapes.

Not a paper figure — the paper's testbed is a single 16-GPU node; its
outlook (§10) points at scaling beyond one machine. This experiment holds
the total GPU count at 16 and reshapes the cluster (1x16, 2x8, 4x4): the
grid is split hierarchically (node intervals first, then per-GPU ranges),
so only partition seams at node boundaries exchange halos across the
simulated NIC/fabric tier, and the trace accounting splits the exposed
transfer time into intra-node vs inter-node buckets.
"""

import json

import pytest

from repro.harness.experiments import cluster_scaling
from repro.harness.report import format_table

WORKLOADS = ("hotspot", "nbody", "matmul")
SHAPES = ((1, 16), (2, 8), (4, 4))
SCHEDULES = ("sequential", "overlap", "overlap+p2p")


def _sweep():
    return cluster_scaling(
        workloads=WORKLOADS, shapes=SHAPES, size="medium", schedules=SCHEDULES
    )


def test_cluster_scaling(benchmark, write_report):
    pts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        [
            "Workload",
            "Shape",
            "Schedule",
            "Time [s]",
            "Speedup",
            "Intra exposed [s]",
            "Inter exposed [s]",
            "Inter copies",
        ],
        [
            (
                p.workload,
                f"{p.n_nodes}x{p.gpus_per_node}",
                p.schedule,
                f"{p.time:.3f}",
                f"{p.speedup:.2f}",
                f"{p.intra_exposed:.5f}",
                f"{p.inter_exposed:.5f}",
                p.inter_node_transfers,
            )
            for p in pts
        ],
        title="Cluster scaling at 16 total GPUs (medium problems)",
    )
    write_report("cluster_scaling.txt", text)
    write_report(
        "cluster_scaling.json",
        json.dumps(
            [
                {
                    "workload": p.workload,
                    "size": p.size_label,
                    "n_nodes": p.n_nodes,
                    "gpus_per_node": p.gpus_per_node,
                    "schedule": p.schedule,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "intra_hidden": p.intra_hidden,
                    "intra_exposed": p.intra_exposed,
                    "inter_hidden": p.inter_hidden,
                    "inter_exposed": p.inter_exposed,
                    "inter_node_transfers": p.inter_node_transfers,
                    "inter_node_bytes": p.inter_node_bytes,
                    "transfers_busy": p.transfers_busy,
                }
                for p in pts
            ],
            indent=2,
        ),
    )

    by = {(p.workload, p.n_nodes, p.schedule): p for p in pts}
    for w in WORKLOADS:
        for sched in SCHEDULES:
            flat = by[(w, 1, sched)]
            # A 1-node cluster has no network: every transfer is intra-node.
            assert flat.inter_node_transfers == 0, (w, sched)
            assert flat.inter_hidden == 0 and flat.inter_exposed == 0, (w, sched)
            for n_nodes, gpus_per_node in SHAPES[1:]:
                p = by[(w, n_nodes, sched)]
                # The acceptance sanity: at equal total GPUs a multi-node
                # shape never reports *less* inter-node exposed time than
                # the network-free 1-node shape.
                assert p.inter_exposed >= flat.inter_exposed, (w, n_nodes, sched)
            # More node seams -> at least as many cross-node halo copies.
            assert (
                by[(w, 4, sched)].inter_node_transfers
                >= by[(w, 2, sched)].inter_node_transfers
            ), (w, sched)

    for p in pts:
        # The exposure tiers partition busy_time(TRANSFERS) exactly.
        assert p.exposure_identity_error <= 1e-9 * max(1.0, p.transfers_busy), (
            p.workload,
            p.n_nodes,
            p.schedule,
        )
        # Stencil/pairwise halos are a sliver of the data: the network tier
        # must see strictly fewer bytes than the whole coherence traffic.
        if p.n_nodes > 1 and p.inter_node_transfers:
            assert p.inter_node_bytes > 0
