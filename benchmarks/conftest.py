"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and appends a
plain-text report to ``benchmarks/results/``, so a full
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced evaluation
on disk (EXPERIMENTS.md records a snapshot of these outputs).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    def _write(name: str, text: str) -> None:
        (results_dir / name).write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return _write
