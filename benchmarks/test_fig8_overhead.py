"""Figure 8: overhead of the runtime system (non-transfer overhead).

The paper reports, over all benchmarks and problem sizes, the fraction of
runtime spent in dependency resolution ((β−γ)/α): 25th percentile 0.001 %,
median 0.51 %, 75th percentile 3.5 %, maximum 6.8 %.
"""

import pytest

from repro.harness.experiments import figure8
from repro.harness.paper import NON_TRANSFER_OVERHEAD_MAX, OVERHEAD_PERCENTILES
from repro.harness.report import format_table

COUNTS = (1, 2, 4, 8, 12, 16)


def test_figure8(benchmark, write_report):
    stats = benchmark.pedantic(
        figure8, kwargs={"gpu_counts": COUNTS}, rounds=1, iterations=1
    )
    rows = [
        (
            s.n_gpus,
            f"{s.percentile(0.25):.4%}",
            f"{s.median:.4%}",
            f"{s.percentile(0.75):.4%}",
            f"{max(s.fractions):.4%}",
        )
        for s in stats
    ]
    all_fractions = sorted(f for s in stats for f in s.fractions)

    def pct(q):
        idx = q * (len(all_fractions) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(all_fractions) - 1)
        return all_fractions[lo] * (1 - (idx - lo)) + all_fractions[hi] * (idx - lo)

    text = format_table(
        ["GPUs", "p25", "median", "p75", "max"],
        rows,
        title="Figure 8: Non-transfer overhead fraction per GPU count",
    )
    text += (
        "\nOverall percentiles (paper: p25=0.001%, median=0.51%, p75=3.5%, max=6.8%):\n"
        f"  p25={pct(0.25):.4%}  median={pct(0.5):.4%}  p75={pct(0.75):.4%}"
        f"  max={max(all_fractions):.4%}\n"
    )
    write_report("figure8.txt", text)

    # Shape: overhead fraction grows with GPU count, stays small overall.
    medians = {s.n_gpus: s.median for s in stats}
    assert medians[16] >= medians[2] >= medians[1]
    assert pct(0.5) < 0.05  # median below 5 % (paper: 0.51 %)
    assert pct(0.25) < 0.01
    assert max(all_fractions) < 0.30  # bounded even in the worst case
