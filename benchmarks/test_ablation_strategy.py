"""Ablation: partitioning axis choice (DESIGN.md §5.5).

The compiler splits along the axis that drives the slowest-varying written
dimension (rows), so each partition writes contiguous memory. This ablation
forces the *wrong* axis (columns) on the stencil and measures the simulated
consequences: fragmented trackers and far more coherence traffic.
"""

import pytest

from repro.compiler.pipeline import compile_app
from repro.compiler.strategy import PartitionStrategy
from repro.cuda.api import MemcpyKind
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sim.engine import SimMachine
from repro.sim.topology import MachineSpec
from repro.workloads.common import ProblemConfig
from repro.workloads.hotspot import HotspotWorkload

CFG = ProblemConfig("hotspot", "functional", 1024, 6)
SPEC = MachineSpec(n_gpus=8)


def _run(axis):
    wl = HotspotWorkload(CFG)
    app = compile_app(wl.build_kernels())
    ck = app.kernel("hotspot")
    original = ck.strategy
    try:
        ck.strategy = PartitionStrategy(axis=axis)
        machine = SimMachine(SPEC)
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=8), machine=machine, functional=False)
        wl.run(api, None)
        return machine.elapsed(), api.stats
    finally:
        ck.strategy = original


def test_strategy_row_split(benchmark, write_report):
    elapsed, stats = benchmark.pedantic(_run, args=("y",), rounds=1, iterations=1)
    assert stats.sync_transfers > 0
    test_strategy_row_split.result = (elapsed, stats)


def test_strategy_column_split(benchmark, write_report):
    elapsed_col, stats_col = benchmark.pedantic(_run, args=("x",), rounds=1, iterations=1)
    elapsed_row, stats_row = _run("y")
    text = (
        "Ablation: partition axis for the 2-D stencil (8 GPUs, 1024^2, 6 iters)\n"
        f"  row split (compiler's choice): time={elapsed_row:.4f}s "
        f"sync={stats_row.sync_bytes/1e6:.1f}MB transfers={stats_row.sync_transfers}\n"
        f"  column split (forced):         time={elapsed_col:.4f}s "
        f"sync={stats_col.sync_bytes/1e6:.1f}MB transfers={stats_col.sync_transfers}\n"
    )
    write_report("ablation_strategy.txt", text)
    # The column split fragments every row: it must move at least as much
    # data and issue far more transfers.
    assert stats_col.sync_transfers > 4 * stats_row.sync_transfers
    assert elapsed_col >= elapsed_row
