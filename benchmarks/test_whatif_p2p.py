"""What-if experiment: peer-to-peer DMA instead of host staging.

Not a paper figure — the paper's testbed staged all device-to-device
traffic through host memory (pre-P2P across K80 boards), and its outlook
(§1, §10) points at interconnect evolution. This experiment re-runs the
medium problems with `p2p_enabled=True` (direct copies, no staging factor,
no staging bus) to quantify how much of the partitioning overhead is pure
interconnect: matmul's redistribution-bound curve benefits most.
"""

from dataclasses import replace

import pytest

from repro.harness.calibration import K80_NODE_SPEC
from repro.harness.experiments import reference_time, run_timed
from repro.harness.report import format_table
from repro.workloads.common import TABLE1

P2P_SPEC = replace(K80_NODE_SPEC, p2p_enabled=True, staging_factor=1.0)
COUNTS = (4, 8, 16)


def _sweep():
    rows = []
    for wl in ("hotspot", "nbody", "matmul"):
        cfg = TABLE1[wl]["medium"]
        ref = reference_time(cfg)
        for g in COUNTS:
            staged, _ = run_timed(cfg, g, K80_NODE_SPEC)
            p2p, _ = run_timed(cfg, g, P2P_SPEC)
            rows.append((wl, g, ref / staged, ref / p2p))
    return rows


def test_whatif_p2p(benchmark, write_report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["Workload", "GPUs", "Speedup (staged, paper-like)", "Speedup (P2P what-if)"],
        [(w, g, f"{a:.2f}", f"{b:.2f}") for w, g, a, b in rows],
        title="What-if: peer-to-peer DMA vs host-staged copies (medium problems)",
    )
    write_report("whatif_p2p.txt", text)
    by = {(w, g): (a, b) for w, g, a, b in rows}
    # P2P never hurts; the gain grows with GPU count (more peer traffic).
    for (w, g), (staged, p2p) in by.items():
        assert p2p >= staged * 0.999, (w, g)
    for w in ("hotspot", "nbody", "matmul"):
        gain16 = by[(w, 16)][1] / by[(w, 16)][0]
        gain4 = by[(w, 4)][1] / by[(w, 4)][0]
        assert gain16 > gain4, w
        assert gain16 > 1.3, w
    # N-Body benefits most: its per-step all-gather of many small segments
    # is bound by the staging setup latency that P2P removes.
    nb_gain = by[("nbody", 16)][1] / by[("nbody", 16)][0]
    assert nb_gain >= max(
        by[("matmul", 16)][1] / by[("matmul", 16)][0],
        by[("hotspot", 16)][1] / by[("hotspot", 16)][0],
    )
