"""What-if experiment: DAG-scheduled overlap and peer-to-peer DMA.

Not a paper figure — the paper's runtime issues its coherence copies in a
barrier-structured sequence and its testbed staged all device-to-device
traffic through host memory (pre-P2P across K80 boards); the outlook
(§1, §10) points at interconnect evolution. This experiment runs the
medium problems through the *real* launch scheduler (``repro.sched``)
under all three policies:

* ``sequential``  — the paper-faithful Figure 4 orchestration,
* ``overlap``     — per-launch task DAG, copy engines overlap compute,
* ``overlap+p2p`` — additionally routes device-to-device copies over
  direct peer DMA instead of host staging.

Unlike the earlier analytical model (which re-costed the sequential trace
with a P2P-enabled spec), every row here is an actual scheduled execution,
so the reported gains include the dependency structure: a partition only
waits for the copies feeding *its* read set.
"""

import json

import pytest

from repro.harness.experiments import schedule_comparison
from repro.harness.report import format_table
from repro.sched.policy import SCHEDULES

WORKLOADS = ("hotspot", "nbody", "matmul")
COUNTS = (4, 8, 16)


def _sweep():
    return schedule_comparison(workloads=WORKLOADS, gpu_counts=COUNTS, size="medium")


def test_whatif_p2p(benchmark, write_report):
    pts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        ["Workload", "GPUs", "Schedule", "Time [s]", "Speedup", "Hidden transfers"],
        [
            (p.workload, p.n_gpus, p.schedule, f"{p.time:.3f}", f"{p.speedup:.2f}", f"{p.hidden_fraction:.1%}")
            for p in pts
        ],
        title="What-if: DAG overlap and peer-to-peer DMA (medium problems)",
    )
    write_report("whatif_p2p.txt", text)
    write_report(
        "whatif_p2p.json",
        json.dumps(
            [
                {
                    "workload": p.workload,
                    "size": p.size_label,
                    "n_gpus": p.n_gpus,
                    "schedule": p.schedule,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "hidden_transfer_time": p.hidden_transfer_time,
                    "exposed_transfer_time": p.exposed_transfer_time,
                }
                for p in pts
            ],
            indent=2,
        ),
    )

    by = {(p.workload, p.n_gpus, p.schedule): p for p in pts}
    for w in WORKLOADS:
        for g in COUNTS:
            seq = by[(w, g, "sequential")]
            ovl = by[(w, g, "overlap")]
            p2p = by[(w, g, "overlap+p2p")]
            # Relaxing the barrier never hurts (kernel dependencies are a
            # subset of the global barrier), and direct DMA never hurts on
            # top of that (the staged route strictly dominates its cost).
            assert ovl.speedup >= seq.speedup * 0.999, (w, g)
            assert p2p.speedup >= ovl.speedup * 0.999, (w, g)
            # Overlap actually hides coherence traffic where there is any.
            if seq.exposed_transfer_time + seq.hidden_transfer_time > 0:
                assert ovl.hidden_fraction > seq.hidden_fraction, (w, g)

    for w in WORKLOADS:
        # The overlap gain grows with GPU count: more partitions mean more
        # independent copy/compute pairs for the DAG to pipeline.
        gain16 = by[(w, 16, "overlap")].speedup / by[(w, 16, "sequential")].speedup
        gain4 = by[(w, 4, "overlap")].speedup / by[(w, 4, "sequential")].speedup
        assert gain16 > gain4, w

    # The acceptance-critical points: at 16 GPUs the DAG schedule must beat
    # the paper schedule outright, and P2P routing must improve on overlap.
    hs16 = {s: by[("hotspot", 16, s)] for s in SCHEDULES}
    assert hs16["overlap"].speedup > hs16["sequential"].speedup * 1.05
    assert hs16["overlap+p2p"].speedup > hs16["overlap"].speedup
