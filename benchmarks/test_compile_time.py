"""§3: compile-time increase of the two-pass pipeline.

"This repeated invocation of gpucc introduces redundant work, resulting in a
compile time increase from 1.9x - 2.2x for the tested applications."
"""

import pytest

from repro.harness.experiments import compile_time_ratio
from repro.harness.paper import COMPILE_TIME_RATIO
from repro.harness.report import format_table


def test_compile_time_ratio(benchmark, write_report):
    ratios = benchmark.pedantic(
        compile_time_ratio, kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    text = format_table(
        ["Application", "Pipeline / plain compile"],
        [(k, f"{v:.2f}x") for k, v in sorted(ratios.items())],
        title="Compile-time increase of the partitioning pipeline (paper: 1.9x - 2.2x)",
    )
    write_report("compile_time.txt", text)

    for name, ratio in ratios.items():
        # Two passes over a hypothetical single pass: the paper's band is
        # 1.9x - 2.2x; pass 2 does strictly more work than pass 1 here
        # (partitioning + enumerator codegen), so the ratio sits below 2.
        assert 1.05 < ratio < 3.0, (name, ratio)
