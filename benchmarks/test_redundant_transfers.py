"""Redundant-transfer elimination: shared-copy vs sole-owner trackers (§8.3).

The paper calls out that "the tracker of a virtual buffer does not support
shared copies, resulting in redundant transfers for applications with large
amounts of shared data". This benchmark quantifies the remedy: the same
broadcast-read workload (every GPU reduces over one read-only table, the
nbody force-pass access shape) runs with sole-owner trackers and with
shared-copy trackers, on a flat 4-GPU node and on a 2x2 cluster, and the
report records the per-iteration coherence traffic of each.

Assertions: shared-copy tracking strictly reduces transferred bytes on the
broadcast workload (steady state drops to zero — at least the 2x acceptance
bar), never regresses the partition-aligned workload, reduces *inter-node*
bytes on the clustered shape, and leaves every output buffer bitwise
identical.
"""

import json

from repro.harness.experiments import redundancy_study
from repro.harness.report import format_table

SHAPES = ((1, 4), (2, 2))
SCHEDULES = ("sequential", "overlap")


def _sweep():
    return redundancy_study(n=4096, iterations=8, shapes=SHAPES, schedules=SCHEDULES)


def test_redundant_transfers(benchmark, write_report):
    pts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        [
            "Kernel",
            "Shape",
            "Schedule",
            "Shared",
            "First iter [B]",
            "Steady [B]",
            "Total sync [B]",
            "Avoided [B]",
            "Inter-node [B]",
        ],
        [
            (
                p.kernel,
                f"{p.n_nodes}x{p.gpus_per_node}",
                p.schedule,
                "on" if p.shared_copies else "off",
                p.first_iter_bytes,
                p.steady_bytes,
                p.total_sync_bytes,
                p.redundant_bytes_avoided,
                p.inter_node_bytes,
            )
            for p in pts
        ],
        title="Redundant transfers: sole-owner vs shared-copy trackers",
    )
    write_report("redundant_transfers.txt", text)
    write_report(
        "redundant_transfers.json",
        json.dumps(
            [
                {
                    "kernel": p.kernel,
                    "shared_copies": p.shared_copies,
                    "schedule": p.schedule,
                    "n_nodes": p.n_nodes,
                    "gpus_per_node": p.gpus_per_node,
                    "iterations": p.iterations,
                    "first_iter_bytes": p.first_iter_bytes,
                    "steady_bytes": p.steady_bytes,
                    "total_sync_bytes": p.total_sync_bytes,
                    "redundant_bytes_avoided": p.redundant_bytes_avoided,
                    "inter_node_bytes": p.inter_node_bytes,
                    "tracker_share_ops": p.tracker_share_ops,
                    "tracker_invalidate_ops": p.tracker_invalidate_ops,
                    "checksum": p.checksum,
                }
                for p in pts
            ],
            indent=2,
        ),
    )

    by = {(p.kernel, p.n_nodes, p.schedule, p.shared_copies): p for p in pts}
    for n_nodes, gpn in SHAPES:
        for sched in SCHEDULES:
            off = by[("broadcast", n_nodes, sched, False)]
            on = by[("broadcast", n_nodes, sched, True)]
            # Same bytes, same result: redundancy elimination is functional-
            # behaviour-neutral under every setting.
            assert on.checksum == off.checksum, (n_nodes, sched)
            # The acceptance bar: at least a 2x steady-state reduction in
            # re-broadcast bytes (shared copies actually reach zero).
            assert off.steady_bytes > 0, (n_nodes, sched)
            assert on.steady_bytes * 2 <= off.steady_bytes, (n_nodes, sched)
            assert on.total_sync_bytes < off.total_sync_bytes, (n_nodes, sched)
            assert on.redundant_bytes_avoided > 0 and on.tracker_share_ops > 0
            assert off.redundant_bytes_avoided == 0 and off.tracker_share_ops == 0
            if n_nodes > 1:
                # Nearest-copy routing keeps steady-state refetches off the
                # fabric entirely: only the warm-up crosses nodes.
                assert on.inter_node_bytes < off.inter_node_bytes, (n_nodes, sched)

            aligned_off = by[("aligned", n_nodes, sched, False)]
            aligned_on = by[("aligned", n_nodes, sched, True)]
            # Partition-aligned reads were already traffic-free; shared
            # copies must not regress them.
            assert aligned_on.checksum == aligned_off.checksum, (n_nodes, sched)
            assert aligned_on.total_sync_bytes <= aligned_off.total_sync_bytes
            assert aligned_on.steady_bytes == 0 and aligned_off.steady_bytes == 0
