"""Figure 7: breakdown of the execution time of transformed applications.

Reproduces the paper's alpha/beta/gamma measurement scheme (§9.2) on the
medium problems: relative time in Application (γ/α), Transfers ((α−β)/α)
and Patterns ((β−γ)/α) for 2..16 GPUs.
"""

import pytest

from repro.harness.experiments import figure7
from repro.harness.report import format_table

COUNTS = (2, 4, 6, 8, 10, 12, 14, 16)


def test_figure7(benchmark, write_report):
    rows = benchmark.pedantic(
        figure7, kwargs={"gpu_counts": COUNTS}, rounds=1, iterations=1
    )
    table = [
        (
            r.workload,
            r.n_gpus,
            f"{r.t_application:.3f}",
            f"{r.t_transfers:.3f}",
            f"{r.t_patterns:.4f}",
        )
        for r in rows
    ]
    text = format_table(
        ["Workload", "GPUs", "Application", "Transfers", "Patterns"],
        table,
        title="Figure 7: Breakdown of the execution time (medium problems)",
    )
    write_report("figure7.txt", text)

    by = {(r.workload, r.n_gpus): r for r in rows}

    for r in rows:
        # Shares are a partition of the runtime.
        assert r.t_application + r.t_transfers + r.t_patterns == pytest.approx(1.0)
        assert r.t_application > 0
        # "the majority of the overhead is caused by transfers" (§9.2).
        assert r.t_transfers >= r.t_patterns

    # Relative overhead grows with the number of GPUs (paper: "As expected,
    # the relative time spent with overhead increases with larger numbers of
    # GPUs").
    for wl in ("hotspot", "matmul", "nbody"):
        assert by[(wl, 16)].t_application < by[(wl, 2)].t_application
        assert by[(wl, 16)].t_transfers > by[(wl, 2)].t_transfers
