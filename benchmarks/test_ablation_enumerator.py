"""Ablation: compiled scanner code vs interpreted AST walking (§6.1).

The paper embeds generated LLVM IR functions in the binary instead of
interpreting the polyhedral ASTs at runtime; the analogue here is compiling
the scanner AST to Python source vs walking it node by node. This ablation
quantifies the win (DESIGN.md §5.2).
"""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.enumerators import build_enumerator
from repro.compiler.strategy import choose_strategy
from repro.cuda.dim3 import Dim3
from repro.workloads.parametric import build_parametric_stencil


@pytest.fixture(scope="module")
def setup():
    kernel = build_parametric_stencil()
    info = analyze_kernel(kernel)
    strat = choose_strategy(info)
    grid, block = Dim3(64, 64), Dim3(16, 16)
    part = strat.partitions(grid, 8)[3]
    compiled = build_enumerator(info, "src", "read", use_codegen=True)
    interpreted = build_enumerator(info, "src", "read", use_codegen=False)
    n = 1024
    return compiled, interpreted, part, block, grid, {"n": n}, (n, n)


def _scan(enum, part, block, grid, scalars, shape):
    enum._cache.clear()  # measure the scan, not the memo
    return enum.element_ranges(part, block, grid, scalars, shape)


def test_compiled_scanner(benchmark, setup):
    compiled, _, part, block, grid, scalars, shape = setup
    ranges, emitted = benchmark(_scan, compiled, part, block, grid, scalars, shape)
    assert emitted > 0


def test_interpreted_scanner(benchmark, setup):
    _, interpreted, part, block, grid, scalars, shape = setup
    ranges, emitted = benchmark(_scan, interpreted, part, block, grid, scalars, shape)
    assert emitted > 0


def test_both_agree(setup):
    compiled, interpreted, part, block, grid, scalars, shape = setup
    assert _scan(compiled, part, block, grid, scalars, shape) == _scan(
        interpreted, part, block, grid, scalars, shape
    )
