"""§9.2 opening: overhead of the partitioned binary on a single GPU.

"across all single-GPU experiments, the slow-down has a median of 2.1 %,
with a 25th and 75th percentile of 0.13 % and 3.1 %, respectively."
"""

import statistics

import pytest

from repro.harness.experiments import single_gpu_overhead
from repro.harness.paper import SINGLE_GPU_SLOWDOWN
from repro.harness.report import format_table


def test_single_gpu_overhead(benchmark, write_report):
    rows = benchmark.pedantic(single_gpu_overhead, rounds=1, iterations=1)
    table = [(str(cfg), f"{frac:.4%}") for cfg, frac in rows]
    fractions = sorted(f for _, f in rows)
    med = statistics.median(fractions)
    text = format_table(
        ["Configuration", "Slowdown"],
        table,
        title="Single-GPU slowdown of the partitioned application",
    )
    text += (
        f"\nmedian={med:.4%} (paper {SINGLE_GPU_SLOWDOWN['median']:.2%}), "
        f"p25={fractions[len(fractions)//4]:.4%} (paper {SINGLE_GPU_SLOWDOWN['p25']:.2%}), "
        f"p75={fractions[3*len(fractions)//4]:.4%} (paper {SINGLE_GPU_SLOWDOWN['p75']:.2%})\n"
    )
    write_report("single_gpu_overhead.txt", text)

    assert len(rows) == 9
    # All slowdowns are non-negative and small (paper max ~ a few percent).
    for cfg, frac in rows:
        assert -0.005 <= frac <= 0.08, (cfg, frac)
    assert med <= 0.03
