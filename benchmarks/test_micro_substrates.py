"""Microbenchmarks of the load-bearing substrates.

Not a paper figure — these watch the performance of the pieces the toolchain
leans on hardest: Fourier-Motzkin projection, emptiness/injectivity proofs,
scanner compilation, B-tree operations and the vectorized kernel
interpreter.
"""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.legality import check_partitionable
from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import run_kernel
from repro.poly import parse_basic_set
from repro.poly.codegen import compile_scanner
from repro.runtime.btree import BTreeMap
from repro.workloads.hotspot import build_hotspot_kernel
from repro.workloads.matmul import build_matmul_kernel


def test_micro_fm_projection(benchmark):
    s = parse_basic_set(
        "[n, m] -> { [a, b, c, d] : 0 <= a < n and a <= b < a + m "
        "and b <= c < b + m and c <= d < c + m }"
    )
    result = benchmark(lambda: s.project_out(["b", "c", "d"]))
    assert result.space.out_dims == ("a",)


def test_micro_emptiness(benchmark):
    s = parse_basic_set(
        "[n] -> { [x, y, z] : 0 <= x < n and x <= y <= x + 4 "
        "and 2*z = x + y and z > x + 3 and z < x + 1 }"
    )
    assert benchmark(s.is_empty)


def test_micro_scanner_compilation(benchmark):
    s = parse_basic_set("[n, lo, hi] -> { [y, x] : lo <= y < hi and 0 <= x < n and x <= y }")
    scan = benchmark(lambda: compile_scanner(s, ["n", "lo", "hi"]))
    out = []
    scan((64, 0, 64), lambda row, a, b: out.append((row, a, b)))
    assert out


def test_micro_kernel_analysis(benchmark):
    kernel = build_hotspot_kernel(512)
    info = benchmark(lambda: analyze_kernel(kernel))
    assert info.partitionable


def test_micro_injectivity_proof(benchmark):
    info = analyze_kernel(build_matmul_kernel(256))
    axes = benchmark(lambda: check_partitionable(info))
    assert axes is not None


def test_micro_btree_mixed_ops(benchmark):
    keys = np.random.default_rng(0).integers(0, 1 << 20, 4000).tolist()

    def run():
        bt = BTreeMap(8)
        for k in keys:
            bt.insert(k, k)
        for k in keys[::2]:
            bt.delete(k)
        hits = sum(1 for k in keys if bt.floor(k) is not None)
        return hits

    assert benchmark(run) > 0


def test_micro_interpreter_throughput(benchmark):
    """Vectorized stencil execution: elements/second of the mini-CUDA VM."""
    n = 256
    kernel = build_hotspot_kernel(n)
    src = np.random.default_rng(0).random((n, n), dtype=np.float32).reshape(n, n)
    dst = np.zeros((n, n), dtype=np.float32)
    args = {"temp_in": src, "temp_out": dst}

    def run():
        run_kernel(kernel, Dim3(n // 16, n // 16), Dim3(16, 16), args)
        return dst

    out = benchmark(run)
    assert out[1, 1] != 0.0
