"""Cross-launch pipelining: fused windows vs per-launch orchestration.

Not a paper figure — the paper drains each launch's schedule before the
host builds the next one. This experiment fuses a rolling window of
iteration-loop launches into one task DAG (halo copies of launch k+1
overlap the trailing kernels of launch k, inter-node halos issue first on
a cluster) and reports end-to-end time plus the hidden/exposed transfer
split at windows 1, 2, and 4 on a flat 16-GPU node and a 2x8 cluster.

The same sweep backs the ``repro bench pipeline`` CLI self-check, which
enforces the acceptance bars at paper size (medium, 2x8). This file
mirrors those bars at small size on a 2x4 cluster — the shape whose
seam-to-interior ratio is pipeline-limited at small problems too.
"""

import json

from repro.harness.experiments import pipeline_study
from repro.harness.report import format_table

WORKLOADS = ("hotspot", "nbody")
WINDOWS = (1, 2, 4)
CLUSTER_SHAPE = (2, 4)


def _sweep():
    return pipeline_study(
        workloads=WORKLOADS,
        windows=WINDOWS,
        n_gpus=16,
        cluster_shape=CLUSTER_SHAPE,
        size="small",
    )


def test_pipeline_windows(benchmark, write_report):
    pts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        [
            "Workload",
            "Topology",
            "Schedule",
            "Window",
            "Time [s]",
            "Speedup",
            "Exposed [ms]",
            "Hidden",
            "Flushes",
            "Batch",
        ],
        [
            (
                p.workload,
                f"{p.n_nodes}x{p.gpus_per_node}",
                p.schedule,
                p.pipeline_window,
                f"{p.time:.4f}",
                f"{p.speedup:.2f}",
                f"{p.exposed_transfer_time * 1e3:.3f}",
                f"{p.hidden_fraction:.1%}",
                p.pipeline_flushes,
                p.pipeline_max_batch,
            )
            for p in pts
        ],
        title="Cross-launch pipelining (small problems)",
    )
    write_report("pipeline_windows.txt", text)
    write_report(
        "pipeline_windows.json",
        json.dumps(
            [
                {
                    "workload": p.workload,
                    "size": p.size_label,
                    "topology": p.topology,
                    "n_nodes": p.n_nodes,
                    "gpus_per_node": p.gpus_per_node,
                    "schedule": p.schedule,
                    "pipeline_window": p.pipeline_window,
                    "time": p.time,
                    "reference": p.reference,
                    "speedup": p.speedup,
                    "hidden_transfer_time": p.hidden_transfer_time,
                    "exposed_transfer_time": p.exposed_transfer_time,
                    "pipeline_flushes": p.pipeline_flushes,
                    "pipeline_max_batch": p.pipeline_max_batch,
                    "estimate_cache_hits": p.estimate_cache_hits,
                    "estimate_cache_misses": p.estimate_cache_misses,
                }
                for p in pts
            ],
            indent=2,
        ),
    )

    eps = 1e-9
    by = {(p.workload, p.topology, p.schedule, p.pipeline_window): p for p in pts}
    for w in WORKLOADS:
        for topo in ("flat", "cluster"):
            seq = by[(w, topo, "sequential", 1)]
            w1 = by[(w, topo, "overlap+p2p", 1)]
            for window in WINDOWS:
                p = by[(w, topo, "overlap+p2p", window)]
                # Fusing launches must never put transfer time *back* on
                # the critical path relative to per-launch DAG scheduling.
                assert (
                    p.exposed_transfer_time <= w1.exposed_transfer_time + eps
                ), (w, topo, window)
                # Nor slow the simulated clock.
                assert p.time <= w1.time + eps, (w, topo, window)
                # Wider windows drain less often and batch more launches.
                assert p.pipeline_flushes <= seq.pipeline_flushes
                assert p.pipeline_max_batch <= window
            # Headline bars (the CLI enforces the same at paper size):
            # the widest window hides >=25% more transfer time than the
            # sequential baseline exposes, and runs >=1.1x faster.
            wide = by[(w, topo, "overlap+p2p", max(WINDOWS))]
            assert (
                wide.exposed_transfer_time
                <= 0.75 * seq.exposed_transfer_time + eps
            ), (w, topo)
            assert wide.time * 1.1 <= seq.time + eps, (w, topo)

    for p in pts:
        # Exposure tiers partition transfer busy time: fractions are sane.
        assert 0.0 <= p.hidden_fraction <= 1.0
        if p.schedule == "sequential":
            assert p.pipeline_max_batch == 1
