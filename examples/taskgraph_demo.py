#!/usr/bin/env python3
"""Tiled Cholesky as a dynamic task graph, demonstrated (docs/taskgraph.md).

The whole right-looking tiled factorization — POTRF on the diagonal,
TRSM down the panel, SYRK/GEMM on the trailing matrix — is declared
below in ~40 lines of ``@task`` code. No task names another task: every
RAW/WAR/WAW edge is *derived* from the declared tile footprints by byte
interval intersection, and the triangular dependence structure of the
algorithm falls out on its own.

Three things to observe in the output:

1. the derived graph: tasks, edges by kind, and the dependence waves the
   runtime actually executed (wave k = every task whose predecessors all
   finished by wave k-1, run with no inter-task barriers);
2. dependency-driven execution is **bitwise identical** to running the
   same graph one task at a time behind a device barrier;
3. the factor matches ``numpy.linalg.cholesky``.

Run:  python examples/taskgraph_demo.py
"""

import numpy as np

from repro.compiler import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.tasks import TaskGraph, region2d, task
from repro.workloads import functional_config
from repro.workloads.cholesky import CholeskyWorkload

N, TILE = 64, 8  # an 8x8 grid of 8-wide tiles


def build_graph(wl, d_a):
    """The tiled factorization, declared footprint-first."""
    b, nt = wl.tile, wl.n_tiles
    grid, block = wl.launch_config()

    def tile(r, c):  # the [r,c] tile of the n x n array, as a byte region
        return region2d(d_a, (N, N), (r * b, (r + 1) * b), (c * b, (c + 1) * b))

    graph = TaskGraph("cholesky-demo")
    with graph:
        for k in range(nt):

            @task(reads=[tile(k, k)], writes=[tile(k, k)], placement=k)
            def potrf(api, k=k):
                api.launch(wl.potrf, Dim3(1), Dim3(1), [k * b, d_a])

            for i in range(k + 1, nt):

                @task(reads=[tile(k, k), tile(i, k)], writes=[tile(i, k)], placement=i)
                def trsm(api, i=i, k=k):
                    api.launch(wl.trsm, Dim3(1), Dim3(x=b), [i * b, k * b, d_a])

            for i in range(k + 1, nt):

                @task(reads=[tile(i, k), tile(i, i)], writes=[tile(i, i)], placement=i)
                def syrk(api, i=i, k=k):
                    api.launch(wl.syrk, grid, block, [i * b, k * b, d_a])

                for j in range(k + 1, i):

                    @task(
                        reads=[tile(i, k), tile(j, k), tile(i, j)],
                        writes=[tile(i, j)],
                        placement=i + j,
                    )
                    def gemm(api, i=i, j=j, k=k):
                        api.launch(wl.gemm, grid, block, [i * b, j * b, k * b, d_a])

    return graph


def factor(wl, a, mode):
    api = MultiGpuApi(
        compile_app(wl.build_kernels()),
        RuntimeConfig(n_gpus=4, schedule="overlap+p2p", pipeline_window=4),
    )
    d_a = api.cudaMalloc(a.nbytes)
    api.cudaMemcpy(d_a, a, a.nbytes, MemcpyKind.HostToDevice)
    graph = build_graph(wl, d_a)
    graph.run(api, mode=mode)
    out = np.zeros_like(a)
    api.cudaMemcpy(out, d_a, a.nbytes, MemcpyKind.DeviceToHost)
    api.cudaDeviceSynchronize()
    return np.tril(out), graph


def main():
    wl = CholeskyWorkload(functional_config("cholesky", size=N))
    assert wl.tile == TILE
    a = wl.make_inputs(seed=42)["a"]

    graph_out, g = factor(wl, a, "graph")
    print(f"Cholesky {N}x{N} in {wl.n_tiles}x{wl.n_tiles} tiles of {TILE}")
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(g.stats.edge_kinds.items()))
    print(f"derived graph: {g.stats.tasks} tasks, {g.stats.edges} edges ({kinds})")
    print(
        f"executed as {g.stats.waves} dependence waves, "
        f"widest ready set {g.stats.ready_peak}"
    )

    serial_out, _ = factor(wl, a, "serialized")
    assert np.array_equal(graph_out, serial_out)
    print("graph and serialized execution are bitwise identical")

    ref = np.linalg.cholesky(a.astype(np.float64)).astype(np.float32)
    err = float(np.max(np.abs(graph_out - ref)))
    assert np.allclose(graph_out, ref, atol=2e-4, rtol=2e-4)
    print(f"matches numpy.linalg.cholesky (max abs err {err:.2e})")


if __name__ == "__main__":
    main()
