#!/usr/bin/env python3
"""Tour of the static-analysis layer (`repro.analysis` / `repro lint`).

Four kernels, four verdicts:

1. a clean kernel — advisory findings only,
2. a write-write race — an `RP101` error with a replay-confirmed witness
   naming the two colliding threads and the cell,
3. an out-of-bounds write — an `RP301` error with the violating thread and
   the offending index,
4. a non-affine write — rejected for partitioning (`RP202`) with the same
   diagnostic code the compiler pipeline embeds in its reject reason, plus
   the single-GPU fallback note (`RP401`).

Run:  python examples/lint_demo.py
"""

import json

from repro.analysis import lint_kernels, render_json, render_text, validate_report_json
from repro.cuda import f32
from repro.cuda.ir import KernelBuilder

GRID, BLOCK = (4,), (16,)  # 64 threads along x
N = 64


def clean_kernel():
    """dst[i] = src[i] + 1 — injective write, in bounds, partitionable."""
    kb = KernelBuilder("clean")
    src = kb.array("src", f32, (N,))
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    dst[gi,] = src[gi,] + 1.0
    return kb.finish()


def racy_kernel():
    """Every thread stores to cell 0 — a write-write race."""
    kb = KernelBuilder("racy")
    dst = kb.array("dst", f32, (N,))
    dst[0,] = 1.0
    return kb.finish()


def oob_kernel():
    """dst[i + 1] with extent 64 — the last thread writes index 64."""
    kb = KernelBuilder("oob")
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    dst[gi + 1,] = 1.0
    return kb.finish()


def non_affine_kernel():
    """dst[i * i] — not expressible as an affine write map."""
    kb = KernelBuilder("square")
    dst = kb.array("dst", f32, (N * N,))
    gi = kb.global_id("x")
    dst[gi * gi,] = 1.0
    return kb.finish()


def main():
    kernels = [clean_kernel(), racy_kernel(), oob_kernel(), non_affine_kernel()]
    report = lint_kernels(kernels, grid=GRID, block=BLOCK)

    print("=== Text report ===")
    print(render_text(report))
    print()

    (race,) = [d for d in report.diagnostics if d.code == "RP101"]
    w = race.witness
    print("=== The race witness, unpacked ===")
    print(f"array/cell:      {w['array']}[{', '.join(map(str, w['cell']))}]")
    print(f"thread A:        block{tuple(w['thread_a']['block'])} thread{tuple(w['thread_a']['thread'])}")
    print(f"thread B:        block{tuple(w['thread_b']['block'])} thread{tuple(w['thread_b']['thread'])}")
    print(f"replay verdict:  confirmed={w['confirmed']}")
    print()

    (oob,) = [d for d in report.diagnostics if d.code == "RP301"]
    print("=== The out-of-bounds witness ===")
    print(json.dumps(oob.witness, indent=2, sort_keys=True))
    print()

    print("=== JSON report (schema-validated) ===")
    doc = json.loads(render_json(report))
    validate_report_json(doc)  # raises on any schema drift
    print(f"version {doc['version']}, tool {doc['tool']!r}, summary {doc['summary']}")
    print("(the full document is what `python -m repro lint --format json` prints)")


if __name__ == "__main__":
    main()
