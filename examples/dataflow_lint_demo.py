#!/usr/bin/env python3
"""Tour of the cross-launch dataflow analyzer (`repro lint --dataflow`).

Three transfer pathologies, one lint code each:

1. `RP601` redundant re-transfer — the decimating stencil's read-only
   source is re-shipped every launch under sole-owner tracking, although
   the destination still holds a valid copy of the halo rows.
2. `RP602` bounding-range over-approximation — the same stencil's strided
   column reads (`src[gy, 2*gx]`) survive Fourier-Motzkin projection only
   as an inexact per-row bounding range, so every halo transfer ships ~50%
   slack bytes the partition provably never reads.
3. `RP603` false cross-launch serialization — a column-gather kernel whose
   128 single-element column reads blow the dataflow log's 64-run event
   cap; the capped read envelope overlaps every partition's writes even
   though the exact sets are disjoint, so the pipelined scheduler
   serializes launches that are actually independent.

The demo then shows the remedy twice over: modelling
`irredundant_transfers` in the linter empties the RP601/RP602 report, and
enabling it on a real run cuts measured traffic with bitwise-identical
results. Identical diagnostics across partitions are deduplicated into one
record with a `[N partitions]` suffix.

Run:  python examples/dataflow_lint_demo.py
"""

import json

import numpy as np

from repro.analysis import lint_kernels, render_json, render_text, validate_report_json
from repro.compiler.pipeline import compile_app
from repro.cuda import f32
from repro.cuda.ir import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads.common import functional_config
from repro.workloads.dstencil import DStencilWorkload

PASSES = ["partitionability", "races", "bounds", "dataflow"]


def column_gather_kernel(n=128, m=16):
    """Reads column 0 of every row, writes columns >= 1 of its own row.

    No cell is both read and written, so consecutive launches are truly
    independent — but the n single-element column reads exceed the event
    cap and collapse to a whole-array envelope (RP603).
    """
    kb = KernelBuilder("column_gather")
    a = kb.array("a", f32, (n, m))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < m - 1)):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("j", 0, n) as j:
            kb.assign(acc, acc + a[j, 0])
        a[gy, gx + 1] = acc
    return kb.finish()


def main():
    stencil = DStencilWorkload(functional_config("dstencil"))
    grid, block = stencil.launch_config()

    print("=== 1/2: RP601 + RP602 on the decimating stencil ===")
    report = lint_kernels([stencil.kernel], grid=grid, block=block, passes=PASSES)
    print(render_text(report))
    validate_report_json(json.loads(render_json(report)))
    codes = {d.code for d in report.diagnostics}
    assert {"RP601", "RP602"} <= codes, codes

    print("=== same kernel, irredundant transfers modelled: clean ===")
    remedied = lint_kernels(
        [stencil.kernel], grid=grid, block=block, passes=PASSES, irredundant=True
    )
    print(render_text(remedied))
    assert not {"RP601", "RP602"} & {d.code for d in remedied.diagnostics}

    print("=== 3: RP603 on the column gather (note the [N partitions] dedup) ===")
    report = lint_kernels([column_gather_kernel()], grid=(1, 8), block=(16, 16), passes=PASSES)
    print(render_text(report))
    (serial,) = [d for d in report.deduplicated() if d.code == "RP603"]
    assert len(serial.witness["partitions"]) == 4, serial.witness

    print("=== the remedy, measured: repro run --irredundant-transfers ===")
    app = compile_app([stencil.kernel])
    inputs = stencil.make_inputs(seed=0)
    results = {}
    for irr in (False, True):
        api = MultiGpuApi(
            app, RuntimeConfig(n_gpus=4, shared_copies=True, irredundant_transfers=irr)
        )
        out = stencil.run(api, inputs)["out"]
        results[irr] = out
        label = "irredundant" if irr else "bounding   "
        print(
            f"{label}: {api.stats.sync_bytes} sync bytes "
            f"({api.stats.overapprox_bytes_avoided} slack trimmed, "
            f"{api.stats.redundant_bytes_avoided} redundant avoided)"
        )
    assert np.array_equal(results[False], results[True])
    print("bitwise-identical results; slack bytes were provably never read")


if __name__ == "__main__":
    main()
