#!/usr/bin/env python3
"""Figures 3 & 5 of the paper: read/write sets of a partitioned stencil.

Analyzes the 5-point stencil, picks one thread-grid partition, and renders
the partition's *read set* (which includes the halo) and *write set* (a 1:1
mapping) over the array — the paper's Figure 3 — using the very enumerators
(§6) the runtime uses for buffer synchronization.

Run:  python examples/stencil_sets_demo.py
"""

from repro.compiler import analyze_kernel
from repro.compiler.enumerators import build_enumerator
from repro.compiler.strategy import choose_strategy
from repro.cuda.dim3 import Dim3
from repro.workloads.hotspot import build_hotspot_kernel

N = 16  # array side
BLOCK = Dim3(x=4, y=4)
GRID = Dim3(x=4, y=4)
PARTS = 3


def elements_of(enum, part):
    ranges, _ = enum.element_ranges(part, BLOCK, GRID, {}, (N, N))
    cells = set()
    for lo, hi in ranges:
        for e in range(lo, hi):
            cells.add(divmod(e, N))
    return cells


def draw(cells, highlight, title):
    print(title)
    for y in range(N):
        row = ""
        for x in range(N):
            if (y, x) in highlight:
                row += " #"
            elif (y, x) in cells:
                row += " o"
            else:
                row += " ·"
        print("   " + row)
    print()


def main():
    kernel = build_hotspot_kernel(N)
    info = analyze_kernel(kernel)
    strategy = choose_strategy(info)
    print(f"kernel: {kernel.name}; partition axis: {strategy.axis!r}\n")

    enum_read = build_enumerator(info, "temp_in", "read")
    enum_write = build_enumerator(info, "temp_out", "write")

    parts = strategy.partitions(GRID, PARTS)
    middle = parts[1]
    print(f"partition 1 of {PARTS}: blocks y in {middle.y} -> rows "
          f"{middle.y[0] * BLOCK.y}..{middle.y[1] * BLOCK.y - 1}\n")

    read_set = elements_of(enum_read, middle)
    write_set = elements_of(enum_write, middle)

    draw(read_set, read_set - write_set,
         "(b) Read set  ('#' = halo / read-only, 'o' = also written):")
    draw(write_set, set(),
         "(c) Write set (the 1:1 mapping of the partition's threads):")

    halo = read_set - write_set
    print(f"read set:  {len(read_set)} cells   write set: {len(write_set)} cells")
    print(f"halo (data to fetch from neighbours): {len(halo)} cells")
    print("\nThese are exactly the sets the runtime's buffer synchronization")
    print("iterates over before each launch (paper Sections 6 and 8.3).")


if __name__ == "__main__":
    main()
