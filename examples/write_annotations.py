#!/usr/bin/env python3
"""Programmer write-pattern annotations (paper §11), end to end.

The paper's stated limitation is the need for an accurate static model of a
kernel's writes, and §11 proposes "annotation of the source code with write
patterns by the programmer" as a remedy. This example shows it working:

* a kernel whose write subscript the analysis cannot model (it goes through
  an integer division) is rejected and would fall back to one GPU;
* supplying the true write map in isl notation makes the kernel fully
  partitionable — with coherence handled by the usual generated enumerators
  — and the result stays bitwise identical to the reference.

Run:  python examples/write_annotations.py
"""

import numpy as np

from repro.compiler import compile_app
from repro.cuda import CudaApi, Dim3, MemcpyKind, f32
from repro.cuda.ir import KernelBuilder
from repro.runtime import MultiGpuApi, RuntimeConfig

N = 1 << 12


def build_kernel():
    """dst[(2*gi)//2] = 2*src[gi]: the write target is really just gi, but
    the floor division defeats affine analysis."""
    kb = KernelBuilder("obscured")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[(gi * 2) // 2,] = src[gi,] * 2.0
    return kb.finish()


#: What the programmer knows: each thread writes its own global index.
WRITE_MAP = (
    "[bd_x, n] -> { [bo_z, bo_y, bo_x, bi_z, bi_y, bi_x] -> [a0] :"
    " bo_x <= a0 < bo_x + bd_x and 0 <= a0 < n }"
)


def host(api, kernel, data):
    nbytes = N * 4
    d_src = api.cudaMalloc(nbytes)
    d_dst = api.cudaMalloc(nbytes)
    api.cudaMemcpy(d_src, data, nbytes, MemcpyKind.HostToDevice)
    api.launch(kernel, Dim3(N // 128), Dim3(128), [N, d_src, d_dst])
    out = np.zeros(N, dtype=np.float32)
    api.cudaMemcpy(out, d_dst, nbytes, MemcpyKind.DeviceToHost)
    return out


def main():
    kernel = build_kernel()
    data = np.random.default_rng(3).random(N, dtype=np.float32)
    reference = host(CudaApi(), kernel, data)

    print("=== Without annotation ===")
    plain = compile_app([kernel])
    ck = plain.kernel("obscured")
    print(f"partitionable: {ck.partitionable}")
    print(f"reason:        {ck.model.reject_reason}")
    api = MultiGpuApi(plain, RuntimeConfig(n_gpus=4))
    out = host(api, kernel, data)
    assert np.array_equal(out, reference)
    print(f"execution: correct, but via single-GPU fallback "
          f"(fallback launches: {api.stats.fallback_launches})\n")

    print("=== With the programmer's write map (paper §11) ===")
    print(f"annotation: {WRITE_MAP}\n")
    annotated = compile_app(
        [kernel], write_annotations={"obscured": {"dst": WRITE_MAP}}
    )
    ck = annotated.kernel("obscured")
    print(f"partitionable: {ck.partitionable}")
    api = MultiGpuApi(annotated, RuntimeConfig(n_gpus=4))
    out = host(api, kernel, data)
    assert np.array_equal(out, reference)
    print(f"execution: correct AND partitioned across 4 GPUs "
          f"(partition launches: {api.stats.partition_launches}, "
          f"fallbacks: {api.stats.fallback_launches})")


if __name__ == "__main__":
    main()
