#!/usr/bin/env python3
"""The async launch scheduler, demonstrated (see docs/scheduler.md).

Runs the paper's Hotspot stencil on the calibrated K80 node model under all
three launch-scheduler policies:

* ``sequential``  — the paper-faithful Figure 4 barrier orchestration,
* ``overlap``     — per-launch task DAG: each kernel partition waits only
                    for the halo transfers feeding *its own* read set, so
                    the copy engines pipeline transfers against compute,
* ``overlap+p2p`` — additionally routes device-to-device halo copies over
                    direct peer DMA instead of staging through host memory.

Three things to observe in the output:

1. the host-visible results are **bitwise identical** under every policy
   (the scheduler only re-orders device work);
2. the simulated time drops monotonically: sequential >= overlap >=
   overlap+p2p;
3. under ``overlap`` the ``TRANSFERS`` busy time is unchanged (same bytes
   move) — the hidden/exposed split shows part of it slipping behind
   kernel execution instead of sitting on the critical path; ``+p2p``
   then shrinks the busy time itself by skipping the host staging hop.
   (At Table 1's medium sizes, where kernels are long enough to hide
   behind, ~96-98 % of the traffic hides — see docs/scheduler.md.)

Run:  python examples/overlap_demo.py
"""

import numpy as np

from repro.compiler import compile_app
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.sched import SCHEDULES, build_launch_plan
from repro.sim.engine import SimMachine
from repro.sim.trace import Category
from repro.workloads.common import ProblemConfig
from repro.workloads.hotspot import HotspotWorkload

N = 1024
ITERS = 10
GPUS = 8


def run(schedule: str):
    cfg = ProblemConfig("hotspot", "demo", N, ITERS)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    machine = SimMachine(K80_NODE_SPEC.with_gpus(GPUS))
    api = MultiGpuApi(
        app, RuntimeConfig(n_gpus=GPUS, schedule=schedule), machine=machine
    )
    result = workload.run(api, workload.make_inputs(seed=7))
    return result, api


def main():
    print(f"Hotspot {N}x{N}, {ITERS} iterations, {GPUS} simulated GPUs\n")

    results = {}
    print(f"{'schedule':<14} {'time [s]':>10} {'transfers':>10} {'hidden':>8} {'exposed':>9}")
    for schedule in SCHEDULES:
        result, api = run(schedule)
        results[schedule] = result
        trace = api.machine.trace
        x = trace.transfer_exposure()
        print(
            f"{schedule:<14} {api.elapsed():>10.4f}"
            f" {trace.busy_time(Category.TRANSFERS):>10.4f}"
            f" {x['hidden']:>8.4f} {x['exposed']:>9.4f}"
        )

    ref = results["sequential"]
    for schedule in SCHEDULES[1:]:
        for key in ref:
            assert np.array_equal(ref[key], results[schedule][key]), schedule
    print("\nall schedules produced bitwise-identical results")

    # Peek at the task DAG of one launch: rebuild the plan the scheduler
    # compiles for the first iteration (after the initial H2D scatter).
    cfg = ProblemConfig("hotspot", "demo", N, ITERS)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=GPUS))
    import repro.cuda.api as cuda_api

    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    api.cudaMemcpy(a, np.zeros((N, N), np.float32), nbytes, cuda_api.MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    grid, block = workload.launch_config()
    plan = build_launch_plan(api, app.kernel("hotspot"), grid, block, [a, b])
    plan.validate()
    print(
        f"\nfirst launch DAG: {len(plan.kernels)} kernel partitions, "
        f"{len(plan.transfers)} halo transfers, {len(plan.edges())} edges"
    )
    for k in plan.kernels[:3]:
        deps = len(k.transfer_deps)
        print(f"  gpu{k.gpu}: kernel node {k.node} waits on {deps} transfer(s)")
    print("  ... (each partition depends only on copies into its own device)")


if __name__ == "__main__":
    main()
