#!/usr/bin/env python3
"""Cross-launch pipelining, demonstrated (see docs/scheduler.md).

An iteration loop normally drains each launch's task DAG before the host
builds the next one: the first halo copies of iteration k+1 wait for the
*slowest* kernel of iteration k even though the partitions they feed
finished long ago. With ``RuntimeConfig(pipeline_window=N)`` the runtime
buffers up to N consecutive launches and drains them as one fused DAG —
cross-launch dependencies stay interval-precise (an interior partition of
iteration k+1 starts with *zero* edges into iteration k), and on a
cluster the fused window issues inter-node halo copies before interior
traffic so the scarce NIC lanes start early.

Three things to observe in the output:

1. the host-visible results are **bitwise identical** at every window
   (buffering only moves *simulated issue*; the functional half of each
   launch still runs at submit time);
2. ``window=1`` reproduces the per-launch orchestration exactly — same
   simulated time, same trace — so pipelining is purely opt-in;
3. the flush counter drops from one flush per launch to one per window,
   and on the cluster the fused window reorders copy issue halo-first.
   How much *exposed* transfer time that trims is size-dependent (this
   demo's grid is deliberately tiny); ``repro bench pipeline`` enforces
   the >=25 % reduction at paper sizes.

Run:  python examples/pipeline_demo.py
"""

import numpy as np

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.topology import ClusterSpec
from repro.compiler import compile_app
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.workloads.common import ProblemConfig
from repro.workloads.hotspot import HotspotWorkload

N = 1024
ITERS = 12
NODES, GPUS_PER_NODE = 2, 4
WINDOWS = (1, 2, 4)


def run(window: int, schedule: str = "overlap+p2p"):
    cfg = ProblemConfig("hotspot", "demo", N, ITERS)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    cluster = ClusterSpec(
        n_nodes=NODES, node=K80_NODE_SPEC.with_gpus(GPUS_PER_NODE)
    )
    api = MultiGpuApi(
        app,
        RuntimeConfig(
            n_gpus=cluster.total_gpus,
            schedule=schedule,
            pipeline_window=window,
        ),
        machine=ClusterSimMachine(cluster),
    )
    result = workload.run(api, workload.make_inputs(seed=11))
    return result, api


def main():
    print(
        f"Hotspot {N}x{N}, {ITERS} iterations, "
        f"{NODES}x{GPUS_PER_NODE} simulated cluster\n"
    )

    baseline, seq_api = run(1, schedule="sequential")
    seq_exposed = seq_api.machine.trace.transfer_exposure()["exposed"]
    print(
        f"{'window':<8} {'time [s]':>10} {'exposed [ms]':>13} "
        f"{'flushes':>8} {'max batch':>10}"
    )
    print(
        f"{'seq':<8} {seq_api.elapsed():>10.4f} {seq_exposed * 1e3:>13.3f} "
        f"{seq_api.stats.pipeline_flushes:>8} "
        f"{seq_api.stats.pipeline_max_batch:>10}"
    )

    results = {}
    for window in WINDOWS:
        result, api = run(window)
        results[window] = result
        exposed = api.machine.trace.transfer_exposure()["exposed"]
        print(
            f"{window:<8} {api.elapsed():>10.4f} {exposed * 1e3:>13.3f} "
            f"{api.stats.pipeline_flushes:>8} "
            f"{api.stats.pipeline_max_batch:>10}"
        )

    for window in WINDOWS:
        for key in baseline:
            assert np.array_equal(baseline[key], results[window][key]), window
    print("\nall windows produced bitwise-identical results")

    # The flush points are the host-visible operations: a D2H memcpy, a
    # device synchronize, or a tracker query each drain the window early.
    cfg = ProblemConfig("hotspot", "demo", N, 2)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    api = MultiGpuApi(
        app, RuntimeConfig(n_gpus=4, schedule="overlap+p2p", pipeline_window=8)
    )
    import repro.cuda.api as cuda_api

    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    api.cudaMemcpy(
        a, np.zeros((N, N), np.float32), nbytes, cuda_api.MemcpyKind.HostToDevice
    )
    api.cudaMemset(b, 0, nbytes)
    grid, block = workload.launch_config()
    kernel = workload.build_kernels()[0]
    api.launch(kernel, grid, block, [a, b])
    api.launch(kernel, grid, block, [b, a])
    print(f"\nwindow=8 buffers both launches: depth={api.pipeline.depth}")
    a.coherence_state()  # host-visible -> implicit flush
    print(f"after a tracker query:          depth={api.pipeline.depth}")


if __name__ == "__main__":
    main()
