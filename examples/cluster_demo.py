#!/usr/bin/env python3
"""Multi-node cluster simulation, demonstrated (see docs/cluster.md).

Runs the paper's Hotspot stencil on clusters with the *same total GPU
count* but different shapes — 1x8 (one fat node, no network) vs 2x4 and
4x2 (the grid split hierarchically: node intervals first, then per-GPU
ranges, halos at node seams crossing the NIC/fabric tier).

Three things to observe in the output:

1. the host-visible results are **bitwise identical** on every shape and
   under every schedule — clustering, like scheduling, only re-routes
   device work;
2. the 1x8 shape reports zero inter-node traffic, and the exposure
   accounting splits cleanly: intra + inter buckets always sum to the
   TRANSFERS busy time;
3. multi-node shapes pay for their halos at the network rate, but the
   ``overlap`` schedules hide most of that behind compute — the gang
   structure (per-node DAGs + halo in/out) shows how few transfers
   actually cross the fabric.

Run:  python examples/cluster_demo.py
"""

import numpy as np

from repro.cluster import ClusterSimMachine, build_gang_plan
from repro.compiler import compile_app
from repro.harness.calibration import k80_cluster
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.sched import build_launch_plan
from repro.sim.trace import Category
from repro.workloads.common import ProblemConfig
from repro.workloads.hotspot import HotspotWorkload

N = 1024
ITERS = 10
SHAPES = ((1, 8), (2, 4), (4, 2))
SCHEDULE = "overlap"


def run(n_nodes: int, gpus_per_node: int, schedule: str = SCHEDULE):
    cfg = ProblemConfig("hotspot", "demo", N, ITERS)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    cluster = k80_cluster(n_nodes, gpus_per_node)
    machine = ClusterSimMachine(cluster)
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=cluster.total_gpus, schedule=schedule),
        machine=machine,
    )
    result = workload.run(api, workload.make_inputs(seed=7))
    return result, api


def main():
    print(
        f"Hotspot {N}x{N}, {ITERS} iterations, equal-GPU cluster shapes, "
        f"{SCHEDULE!r} schedule\n"
    )

    results = {}
    print(
        f"{'shape':<6} {'time [s]':>9} {'transfers':>10} "
        f"{'intra exp':>10} {'inter exp':>10} {'inter copies':>13}"
    )
    for n_nodes, gpus_per_node in SHAPES:
        result, api = run(n_nodes, gpus_per_node)
        results[(n_nodes, gpus_per_node)] = result
        trace = api.machine.trace
        tiers = trace.transfer_exposure_by_tier()
        busy = trace.busy_time(Category.TRANSFERS)
        split = sum(b for tier in tiers.values() for b in tier.values())
        assert abs(split - busy) <= 1e-9 * max(1.0, busy)  # accounting identity
        print(
            f"{n_nodes}x{gpus_per_node:<4} {api.elapsed():>9.4f} {busy:>10.4f}"
            f" {tiers['intra']['exposed']:>10.5f} {tiers['inter']['exposed']:>10.5f}"
            f" {api.stats.inter_node_transfers:>13}"
        )

    ref = results[SHAPES[0]]
    for shape in SHAPES[1:]:
        for key in ref:
            assert np.array_equal(ref[key], results[shape][key]), shape
    print("\nall cluster shapes produced bitwise-identical results")

    # Peek at the gang structure of one launch on the 2x4 cluster: the
    # scheduler's flat task DAG projected into per-node plans + halos.
    cluster = k80_cluster(2, 4)
    cfg = ProblemConfig("hotspot", "demo", N, ITERS)
    workload = HotspotWorkload(cfg)
    app = compile_app(workload.build_kernels())
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=cluster.total_gpus),
        machine=ClusterSimMachine(cluster),
        functional=True,
    )
    import repro.cuda.api as cuda_api

    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    api.cudaMemcpy(a, np.zeros((N, N), np.float32), nbytes, cuda_api.MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    grid, block = workload.launch_config()
    plan = build_launch_plan(api, app.kernel("hotspot"), grid, block, [a, b])
    gang = build_gang_plan(plan, cluster)
    gang.validate()
    print(f"\ngang plan of the first launch on a 2x4 cluster:")
    for np_ in gang.nodes:
        print(
            f"  node {np_.node}: {len(np_.kernels)} kernel partition(s), "
            f"{len(np_.local_transfers)} local transfer(s), "
            f"{len(np_.halo_in)} halo in, {len(np_.halo_out)} halo out"
        )
    print(
        f"  total: {len(gang.halo_transfers)} cross-node halo transfer(s), "
        f"{gang.halo_bytes} bytes over the fabric"
    )


if __name__ == "__main__":
    main()
