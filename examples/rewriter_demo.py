#!/usr/bin/env python3
"""The source-to-source host rewriter (paper §5) on real CUDA host code.

Shows the three substitution classes the paper's lua preprocessor applies:
top-of-file insertions, CUDA API renames, and kernel-launch expansion into
the runtime's partitioned-launch primitive (Figure 4).

Run:  python examples/rewriter_demo.py
"""

from repro.compiler.rewriter import rewrite_source

HOST_SOURCE = """\
#include <cuda_runtime.h>

int main(int argc, char **argv) {
    int n = atoi(argv[1]);
    size_t bytes = n * n * sizeof(float);
    float *h_in = (float *)malloc(bytes);
    float *h_out = (float *)malloc(bytes);

    float *d_a, *d_b;
    cudaMalloc(&d_a, bytes);
    cudaMalloc(&d_b, bytes);
    cudaMemcpy(d_a, h_in, bytes, cudaMemcpyHostToDevice);

    dim3 block(16, 16);
    dim3 grid(n / 16, n / 16);
    for (int it = 0; it < 1500; ++it) {
        hotspot<<<grid, block>>>(d_a, d_b);
        float *t = d_a; d_a = d_b; d_b = t;
    }

    cudaMemcpy(h_out, d_a, bytes, cudaMemcpyDeviceToHost);
    cudaDeviceSynchronize();
    cudaFree(d_a);
    cudaFree(d_b);
    return 0;
}
"""


def main():
    print("=== Original single-GPU host code ===")
    print(HOST_SOURCE)

    result = rewrite_source(
        HOST_SOURCE, model_path="hotspot_model.json", kernel_names=["hotspot"]
    )

    print("=== Rewritten multi-GPU host code ===")
    print(result.source)

    print("=== Substitution statistics (the paper's three classes) ===")
    print(f"  1. header insertions:   {result.header_insertions}")
    print(f"  2. API substitutions:   {dict(result.api_substitutions)}")
    print(f"  3. launches expanded:   {result.launch_substitutions}")


if __name__ == "__main__":
    main()
