#!/usr/bin/env python3
"""Domain example: the paper's N-Body benchmark end to end.

Runs the direct gravitational simulation (§9.1) functionally on simulated
GPUs — verifying the multi-GPU run is bit-identical to the single-GPU
reference — and then reproduces its speedup curve on the timed K80 node
(the paper's best-scaling workload: 12.4x at 16 GPUs).

Run:  python examples/multi_gpu_nbody.py
"""

import numpy as np

from repro.compiler import compile_app
from repro.cuda.api import CudaApi
from repro.harness.experiments import reference_time, run_timed
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.workloads.common import ProblemConfig
from repro.workloads.nbody import NBodyWorkload


def main():
    # --- functional validation at a laptop-friendly size -----------------
    cfg = ProblemConfig("nbody", "functional", 256, 4)
    workload = NBodyWorkload(cfg)
    inputs = workload.make_inputs(seed=42)

    print(f"N-Body: {cfg.size} bodies, {cfg.iterations} steps (functional check)")
    reference = workload.run(CudaApi(), inputs)

    app = compile_app(workload.build_kernels())
    ck = app.kernel("nbody")
    print(f"  partition axis: {ck.strategy.axis!r}; "
          f"runtime coverage validation: {ck.model.runtime_coverage}")

    for n_gpus in (2, 4, 8):
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=n_gpus))
        result = workload.run(api, inputs)
        assert np.array_equal(result["pos"], reference["pos"])
        assert np.array_equal(result["vel"], reference["vel"])
        gathered = api.stats.sync_bytes / 1024
        print(f"  {n_gpus} GPUs: bitwise equal; per-run gathers {gathered:.0f} KiB "
              f"of positions (the per-step all-gather)")

    # --- timed speedup curve at a paper-scale size ------------------------
    print("\nSimulated speedup (paper Figure 6, N-Body):")
    timed_cfg = ProblemConfig("nbody", "medium", 131_072, 96)
    ref = reference_time(timed_cfg)
    print(f"  single-GPU reference: {ref:7.2f} s (simulated)")
    for n_gpus in (2, 4, 8, 16):
        elapsed, _ = run_timed(timed_cfg, n_gpus)
        print(f"  {n_gpus:2d} GPUs: {elapsed:7.2f} s   speedup {ref / elapsed:5.2f}x")
    print("\n(The paper reports up to 12.4x at 16 GPUs for the large problem.)")


if __name__ == "__main__":
    main()
