#!/usr/bin/env python3
"""Quickstart: compile a single-GPU kernel into a multi-GPU application.

This walks the paper's whole pipeline on a small example:

1. write a kernel against the mini-CUDA builder DSL,
2. run the two-pass compiler (polyhedral analysis -> legality -> partitioned
   clone -> access-set enumerators),
3. run the *same* host program against the single-device reference API and
   against the multi-GPU runtime, and check the results are bitwise equal,
4. re-run in timing mode on the simulated 16-GPU K80 node to estimate the
   speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_app
from repro.compiler.costmodel import KernelCostModel
from repro.cuda import CudaApi, Dim3, MemcpyKind, f32
from repro.cuda.ir import KernelBuilder, kernel_to_cuda
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime import MultiGpuApi, RuntimeConfig
from repro.sim.engine import SimMachine


def build_axpy_kernel():
    """y[i] = a * x[i] + y[i] — the classic SAXPY, written per-thread."""
    kb = KernelBuilder("axpy")
    n = kb.scalar("n")
    a = kb.scalar("a", f32)
    x = kb.array("x", f32, (n,))
    y = kb.array("y", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        y[gi,] = a * x[gi,] + y[gi,]
    return kb.finish()


def host_program(api, kernel, n, a, h_x, h_y):
    """Single-GPU host code; runs unmodified on either API (paper §8.4)."""
    nbytes = n * 4
    d_x = api.cudaMalloc(nbytes)
    d_y = api.cudaMalloc(nbytes)
    api.cudaMemcpy(d_x, h_x, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemcpy(d_y, h_y, nbytes, MemcpyKind.HostToDevice)
    api.launch(kernel, Dim3(x=n // 128), Dim3(x=128), [n, a, d_x, d_y])
    out = np.empty(n, dtype=np.float32)
    api.cudaMemcpy(out, d_y, nbytes, MemcpyKind.DeviceToHost)
    api.cudaDeviceSynchronize()
    return out


def main():
    kernel = build_axpy_kernel()
    print("=== The kernel (CUDA-like rendering) ===")
    print(kernel_to_cuda(kernel))

    print("=== Compiling (two-pass pipeline, paper Section 3) ===")
    app = compile_app([kernel])
    ck = app.kernel("axpy")
    print(f"partitionable:     {ck.partitionable}")
    print(f"strategy:          split grid axis {ck.strategy.axis!r}")
    print(f"unit axes:         {ck.model.unit_axes}")
    print(f"enumerators:       {len(app.enumerators)} generated")
    arg = next(a for a in ck.model.args if a.name == "y")
    print(f"write map of y:    {arg.write.map_str[:90]}...")
    print()

    n = 1 << 16
    rng = np.random.default_rng(0)
    h_x = rng.random(n, dtype=np.float32)
    h_y = rng.random(n, dtype=np.float32)
    a = np.float32(2.5)

    print("=== Functional run: reference vs 4 simulated GPUs ===")
    reference = host_program(CudaApi(), kernel, n, a, h_x, h_y)
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
    result = host_program(api, kernel, n, a, h_x, h_y)
    assert np.array_equal(reference, result), "multi-GPU result diverged!"
    print(f"bitwise equal across 4 GPUs   (sync traffic: {api.stats.sync_bytes} bytes)")
    print()

    print("=== Timing run on the simulated K80 node ===")
    spec = K80_NODE_SPEC
    times = {}
    for g in (1, 2, 4, 8, 16):
        machine = SimMachine(spec.with_gpus(g))
        api = MultiGpuApi(
            app,
            RuntimeConfig(n_gpus=g),
            machine=machine,
            functional=False,
            kernel_cost=KernelCostModel(spec),
        )
        host_program(api, kernel, 1 << 24, a, None, None)
        times[g] = machine.elapsed()
    base = times[1]
    for g, t in times.items():
        print(f"  {g:2d} GPUs: {t * 1e3:8.2f} ms   speedup {base / t:5.2f}x")
    print("\n(AXPY is bandwidth-bound and memcpy-dominated — scaling is modest,")
    print(" exactly as the execution-model suggests for streaming kernels.)")


if __name__ == "__main__":
    main()
