#!/usr/bin/env python3
"""The tracker's shared-copy limitation (paper §8.3) — and its remedy.

"The tracker of a virtual buffer does not support shared copies, resulting
in redundant transfers for applications with large amounts of shared data."

This example runs two iterative kernels over the same read-only lookup
table:

* ``aligned``   — threads read only their own band of the table, which the
  linear H2D distribution happens to match: after warm-up, zero coherence
  traffic per iteration.
* ``broadcast`` — every thread reads the whole table: because synchronization
  copies do not update ownership, every GPU re-fetches the remote parts of
  the table on *every* iteration.

It then re-runs ``broadcast`` with ``RuntimeConfig(shared_copies=True)``:
each synchronization copy registers its destination as a *sharer* of the
segment (docs/coherence.md), so from the second iteration on the table is
valid everywhere and the steady-state coherence traffic drops to zero —
bitwise-identical results, MSI-style invalidation on writes.

Run:  python examples/redundant_transfers.py
The benchmark twin lives in benchmarks/test_redundant_transfers.py, and
``python -m repro bench redundancy`` runs the same study with self-checks.
"""

import numpy as np

from repro.compiler import compile_app
from repro.cuda import CudaApi, Dim3, MemcpyKind, f32
from repro.cuda.ir import KernelBuilder
from repro.runtime import MultiGpuApi, RuntimeConfig

N = 4096
ITERS = 8
GPUS = 4


def build_aligned():
    kb = KernelBuilder("aligned")
    table = kb.array("table", f32, (N,))
    out = kb.array("out", f32, (N,))
    gi = kb.global_id("x")
    with kb.if_(gi < N):
        out[gi,] = out[gi,] + table[gi,]
    return kb.finish()


def build_broadcast():
    kb = KernelBuilder("broadcast")
    table = kb.array("table", f32, (N,))
    out = kb.array("out", f32, (N,))
    gi = kb.global_id("x")
    with kb.if_(gi < N):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("j", 0, N) as j:
            kb.assign(acc, acc + table[j,])
        out[gi,] = acc
    return kb.finish()


def run(kernel, label, shared_copies=False):
    app = compile_app([kernel])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=GPUS, shared_copies=shared_copies))
    nbytes = N * 4
    table = np.linspace(0.0, 1.0, N, dtype=np.float32)
    d_table = api.cudaMalloc(nbytes)
    d_out = api.cudaMalloc(nbytes)
    api.cudaMemcpy(d_table, table, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemcpy(d_out, np.zeros(N, dtype=np.float32), nbytes, MemcpyKind.HostToDevice)
    grid, block = Dim3(N // 128), Dim3(128)
    first = None
    for it in range(ITERS):
        before = api.stats.sync_bytes
        api.launch(kernel, grid, block, [d_table, d_out])
        moved = api.stats.sync_bytes - before
        if it == 0:
            first = moved
        if it in (0, 1, ITERS - 1):
            print(f"  {label}: iteration {it}: {moved:8d} bytes synchronized")
    steady = moved
    return first, steady, api.stats.redundant_bytes_avoided


def main():
    print(f"{GPUS} GPUs, {N}-element read-only table, {ITERS} iterations\n")
    print("Aligned reads (each GPU reads its own band):")
    _, steady_aligned, _ = run(build_aligned(), "aligned")
    print("\nBroadcast reads (every GPU reads the whole table):")
    _, steady_broadcast, _ = run(build_broadcast(), "broadcast")
    print("\nBroadcast reads with shared-copy tracking (shared_copies=True):")
    _, steady_shared, avoided = run(build_broadcast(), "broadcast+shared",
                                    shared_copies=True)

    print(f"\nSteady-state coherence traffic per iteration:")
    print(f"  aligned:            {steady_aligned} bytes")
    print(f"  broadcast:          {steady_broadcast} bytes "
          f"(~{GPUS - 1}/{GPUS} of the table, refetched every iteration)")
    print(f"  broadcast shared:   {steady_shared} bytes "
          f"({avoided} redundant bytes avoided over the run)")
    print("\nWith sole-owner trackers (§8.1) a synchronization copy cannot")
    print("mark data as shared, so broadcast readers pay for it again on")
    print("every launch — the paper's §8.3 limitation. shared_copies=True")
    print("keeps an owner + sharer set per segment instead: copies register")
    print("the destination as a sharer, writes invalidate back to a sole")
    print("owner, and the results stay bitwise identical (docs/coherence.md).")


if __name__ == "__main__":
    main()
