#!/usr/bin/env python3
"""Figure 1 of the paper, live: integer sets, maps, images and unions.

Reproduces Equations (1)-(4) with the bundled integer set library and draws
the three panels of Figure 1 as ASCII grids.

Run:  python examples/polyhedral_sets_demo.py
"""

from repro.poly import parse_basic_map, parse_basic_set, parse_set


def draw(points, *, y_range=(0, 5), x_range=(0, 8), title=""):
    print(title)
    ys = range(y_range[1], y_range[0] - 1, -1)
    for y in ys:
        row = "".join(" ●" if (y, x) in points else " ·" for x in range(*x_range))
        print(f"  y={y} |{row}")
    print("      +" + "--" * (x_range[1] - x_range[0]))
    print("        " + " ".join(str(x) for x in range(*x_range)))
    print()


def main():
    # Equation (1): S1 := { [y, x] | 0 <= y <= x  and  0 <= x <= 4 }
    s1 = parse_basic_set("{ [y, x] : 0 <= y <= x and 0 <= x <= 4 }")
    pts1 = set(s1.enumerate_points())
    draw(pts1, title="(a) The set S1  (Equation 1)")

    # Equation (2): M := { [y, x] -> [y + 1, x + 3] }
    m = parse_basic_map("{ [y, x] -> [y + 1, x + 3] }")
    print(f"The map M: {m!r}\n")

    # Equation (3): S2 := M(S1)
    s2 = m.image(s1)
    pts2 = set(s2.enumerate_points())
    draw(pts2, title="(b) Translated S2 := M(S1)  (Equation 3)")

    closed = parse_basic_set("{ [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }")
    assert pts2 == set(closed.enumerate_points())
    print("S2 matches the paper's closed form { [y,x] : 1 <= y <= x-2, 3 <= x <= 7 }\n")

    # Equation (4): U := S1 u S2
    union = parse_set(
        "{ [y, x] : 0 <= y <= x and 0 <= x <= 4 ;"
        "  [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }"
    )
    draw(set(union.enumerate_points()), title="(c) Union U := S1 u S2  (Equation 4)")

    print(f"|S1| = {len(pts1)}, |S2| = {len(pts2)}, |U| = {len(set(union.enumerate_points()))}")
    print("(The union is smaller than the sum: the sets overlap.)")


if __name__ == "__main__":
    main()
